//! The cycle-level simulation engine.
//!
//! [`Processor`] simulates the execution of a dynamic instruction stream
//! (a trace) on a single-cluster or dual-cluster dynamically-scheduled
//! processor, implementing the execution model of Section 2.1:
//! distribution by named registers, per-cluster register renaming and
//! dispatch queues, greedy oldest-first issue under the Table 1 rules,
//! operand/result transfer buffers with the paper's timing, suspended
//! slave copies, and instruction-replay exceptions for transfer-buffer
//! deadlock.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use mcl_bpred::BranchPredictor;
use mcl_isa::{ArchReg, ClusterId, InstrClass, RegBank};
use mcl_mem::{Access, Cache};
use mcl_trace::{vm::trace_program, PackedTrace, Program, TraceOp, TraceSource, VmError};

use crate::check::{self, CheckLevel, FaultInjection};
use crate::config::{Engine, ProcessorConfig};
use crate::dist::{distribute, Distribution, PhysRegs};
use crate::events::{EventKind, EventLog};
use crate::obs::{
    CopyKind, CycleSnapshot, DeliverySource, HostPhase, HostProf, HostProfReport, IssueBlock,
    NullHostProf, NullProbe, PhaseProf, Probe, StallCause, TransferKind, TransferPhase,
};
use crate::pipeview::{render_window, WindowRow};
use crate::stats::{FastForward, SimStats};
use crate::timeq::{Entry, TimeQ};

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Accumulated statistics ([`SimStats::cycles`] is the paper's
    /// metric).
    pub stats: SimStats,
    /// The event log, when [`ProcessorConfig::record_events`] was set.
    pub events: Option<EventLog>,
    /// Dead-cycle-skip counters (all zero under [`Engine::Ticked`]).
    pub ff: FastForward,
}

/// Simulation errors.
#[derive(Debug)]
pub enum SimError {
    /// Trace generation (the functional VM) failed.
    Trace(VmError),
    /// The configured cycle limit was reached.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// The simulator detected a hard stall it could not attribute to a
    /// transfer-buffer deadlock — a bug, reported rather than hidden.
    /// The tolerated stall length is [`ProcessorConfig::wedge_threshold`].
    Wedged {
        /// The cycle at which progress stopped.
        cycle: u64,
        /// The oldest unretired instruction.
        oldest_seq: u64,
    },
    /// The invariant checker (see [`crate::check`]) found the
    /// architectural state inconsistent — a simulator bug or injected
    /// fault, reported with the failing rule and a window snapshot.
    Invariant {
        /// The cycle at which the violation was detected.
        cycle: u64,
        /// The violated rule (e.g. `otb-accounting`).
        rule: &'static str,
        /// Human-readable specifics of the imbalance.
        detail: String,
        /// A [`render_window`] view of the in-flight instructions.
        snapshot: String,
    },
    /// The cooperative hard watchdog (see [`crate::watchdog`]) found
    /// its wall-clock deadline exceeded and cancelled the run — a
    /// structured timeout instead of a runaway cell.
    Timeout {
        /// The cycle the simulation had reached when it was cancelled.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Trace(e) => write!(f, "trace generation failed: {e}"),
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} reached"),
            SimError::Wedged { cycle, oldest_seq } => {
                write!(f, "simulator wedged at cycle {cycle} (oldest instruction #{oldest_seq})")
            }
            SimError::Invariant { cycle, rule, detail, snapshot } => {
                write!(f, "invariant `{rule}` violated at cycle {cycle}: {detail}\n{snapshot}")
            }
            SimError::Timeout { cycle } => {
                write!(f, "hard watchdog deadline exceeded at cycle {cycle}; run cancelled")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for SimError {
    fn from(e: VmError) -> SimError {
        SimError::Trace(e)
    }
}

/// A simulated processor.
///
/// # Example
///
/// ```
/// use mcl_core::{Processor, ProcessorConfig};
/// use mcl_trace::ProgramBuilder;
/// use mcl_isa::ArchReg;
///
/// let mut b = ProgramBuilder::<ArchReg>::new("tiny");
/// let r2 = ArchReg::int(2);
/// b.lda(r2, 40);
/// b.addq_imm(r2, r2, 2);
/// let program = b.finish()?;
///
/// let result = Processor::new(ProcessorConfig::single_cluster_8way())
///     .run_program(&program)?;
/// assert_eq!(result.stats.retired, 2);
/// assert!(result.stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
}

impl Processor {
    /// Creates a processor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`ProcessorConfig::check`]).
    #[must_use]
    pub fn new(config: ProcessorConfig) -> Processor {
        config.check();
        Processor { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Generates the dynamic trace of `program` with the functional VM,
    /// then simulates it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the program does not execute, or
    /// any error of [`Processor::run_trace`].
    pub fn run_program(&mut self, program: &Program<ArchReg>) -> Result<SimResult, SimError> {
        let (trace, _profile) = trace_program(program)?;
        self.run_trace(&trace)
    }

    /// Simulates a dynamic instruction stream.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_trace(&mut self, trace: &[TraceOp]) -> Result<SimResult, SimError> {
        let mut sim = Sim::new(&self.config, trace);
        sim.run()
    }

    /// Simulates a packed dynamic instruction stream (same timing model
    /// and results as [`Processor::run_trace`], ~3× less memory traffic
    /// per fetched instruction).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_packed(&mut self, trace: &PackedTrace) -> Result<SimResult, SimError> {
        let mut sim = Sim::new(&self.config, trace);
        sim.run()
    }

    /// Like [`Processor::run_trace`], with an observability [`Probe`]
    /// attached. The probe observes and never perturbs: statistics and
    /// results are identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_trace_observed<P: Probe>(
        &mut self,
        trace: &[TraceOp],
        probe: &mut P,
    ) -> Result<SimResult, SimError> {
        let mut sim = Sim::with_probe(&self.config, trace, probe);
        sim.run()
    }

    /// Like [`Processor::run_packed`], with an observability [`Probe`]
    /// attached. The probe observes and never perturbs: statistics and
    /// results are identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_packed_observed<P: Probe>(
        &mut self,
        trace: &PackedTrace,
        probe: &mut P,
    ) -> Result<SimResult, SimError> {
        let mut sim = Sim::with_probe(&self.config, trace, probe);
        sim.run()
    }

    /// Like [`Processor::run_packed`], with the host phase profiler
    /// attached: charges host nanoseconds to engine phases per live
    /// cycle (see [`crate::obs::hostprof`]). The profiler observes the
    /// *host*, never the simulated machine — statistics are identical
    /// to the unprofiled run, and unlike a probe it does not force
    /// single-stepping, so the event engine's fast-forward path is
    /// profiled as it really runs.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_packed_profiled(
        &mut self,
        trace: &PackedTrace,
    ) -> Result<(SimResult, HostProfReport), SimError> {
        let mut prof = PhaseProf::new();
        let mut sim = Sim::with_parts(&self.config, trace, NullProbe, &mut prof);
        let result = sim.run()?;
        let cycles = result.stats.cycles;
        Ok((result, prof.report(cycles)))
    }

    /// Simulates a (window of a) trace, optionally starting from
    /// functionally pre-warmed predictor and cache state instead of the
    /// cold-reset state. This is the per-window worker of the
    /// time-window sharding engine (see [`crate::shard`]); with
    /// `warm == None` it is exactly [`Processor::run_packed`] modulo
    /// `&self` vs `&mut self`.
    pub(crate) fn run_window<T: TraceSource + ?Sized>(
        &self,
        trace: &T,
        warm: Option<crate::shard::WarmState>,
    ) -> Result<SimResult, SimError> {
        let mut sim = Sim::new(&self.config, trace);
        if let Some(w) = warm {
            sim.predictor = w.predictor;
            sim.icache = w.icache;
            sim.dcache = w.dcache;
        }
        sim.run()
    }
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

const OTB: u8 = 0;
const RTB: u8 = 1;

/// Action discriminants for the per-cluster ready/wakeup machinery.
const ACT_MASTER: u8 = 0;
const ACT_SLAVE: u8 = 1;

/// Completion-event discriminants (master done / slave register write).
const DONE_EVT: u8 = 0;
const WRITE_EVT: u8 = 1;

/// Upper bound on configurable divider units (the presets use 1 or 2).
const MAX_DIVIDERS: usize = 8;

/// Null link in the waiter arena.
const NIL: u32 = u32::MAX;

/// Packs a pending branch resolution into a [`TimeQ`] data word:
/// `pc << 2 | taken << 1 | mispredicted`.
fn pack_branch(pc: u64, taken: bool, mispredicted: bool) -> u64 {
    debug_assert!(pc < 1 << 62, "branch pc fits the packed data word");
    (pc << 2) | (u64::from(taken) << 1) | u64::from(mispredicted)
}

/// Why dispatch can make no progress this cycle and, provably, on every
/// cycle until the next scheduled event — computed by
/// [`Sim::dead_dispatch_cause`] by mirroring the stall checks at the
/// top of [`Sim::dispatch`]. Each variant names the stall bucket the
/// skipped cycles are charged to (plus the fetch icache probe the
/// dispatch-queue and register stalls repeat every cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadCause {
    /// Trace exhausted; the window is draining.
    Drain,
    /// Fetch is blocked behind an unresolved mispredicted branch.
    BranchWait,
    /// `now < fetch_resume_at`; charged to the active [`FetchStall`].
    FetchWait,
    /// A pending register reassignment is waiting for the window to
    /// drain.
    ReassignDrain,
    /// The cursor instruction (a fetch icache hit, at this pc) needs a
    /// dispatch-queue entry no cluster has free.
    DispatchQueue(u64),
    /// The cursor instruction (a fetch icache hit, at this pc) needs
    /// physical registers no free list can supply.
    Registers(u64),
}

/// Dispatch-time operand availability (see [`Sim::avail_for`]).
enum Avail {
    /// Readable from the given cycle.
    Known(u64),
    /// Known when the producer at this window index completes.
    WaitDone(usize),
    /// Known when the producer at this window index writes its slave
    /// register copy.
    WaitWrite(usize),
}

/// Issue-readiness bookkeeping for one copy (master or slave) of an
/// instruction: how many operand-availability times are still unknown,
/// and the earliest issue cycle once all are known.
#[derive(Debug, Clone, Copy, Default)]
struct WaitState {
    /// Operands whose availability cycle is not yet known (producer has
    /// not issued). The copy joins the ready queue when this hits zero.
    unknown: u8,
    /// Max over the known operand-availability cycles.
    ready_at: u64,
    /// Currently enqueued in the per-cluster ready set.
    in_ready: bool,
}

/// One copy in a per-cluster ready set, carrying the immutable
/// per-incarnation facts the issue pass needs to classify it.
///
/// The issue pass re-scans every ready copy every live cycle, and in a
/// width- or register-limited stretch most of those scans end in
/// "blocked" — the paper's machine spends whole phases re-evaluating
/// the same handful of copies against a fresh budget. Classification
/// only needs the copy's issue-slot class, its transfer-buffer
/// relationships, and its cluster indices; all of those are fixed from
/// dispatch to squash. Caching them here keeps the (much larger)
/// window entry — and its cache lines — out of the blocked path
/// entirely: the window is only touched when a copy actually issues.
///
/// Sorted by `(seq, act)`, exactly as the former `(u64, u8)` pairs
/// were, so the age-ordered walk and the binary searches are
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReadyEntry {
    /// Instruction sequence number (age order, the primary sort key).
    seq: u64,
    /// `ACT_MASTER` or `ACT_SLAVE` (the sort tiebreak).
    act: u8,
    /// Issue-slot class charged against the width budget.
    slot_class: InstrClass,
    /// `dist.slave_receives` of the incarnation.
    slave_receives: bool,
    /// Whether the slave copy forwards an operand (scenario two/five).
    forwards: bool,
    /// Master cluster index.
    master: u8,
    /// Slave cluster index (meaningful only when the copy has a slave).
    slave: u8,
}

impl ReadyEntry {
    /// The sort/search key: age order, master before slave.
    fn key(&self) -> (u64, u8) {
        (self.seq, self.act)
    }

    /// Builds the cached view of (`d`, `act`); `slot_class` mirrors the
    /// classification the issue pass used to derive in-line.
    fn of(d: &DynInstr, act: u8) -> ReadyEntry {
        let slot_class = if act == ACT_MASTER {
            d.op.class()
        } else if d.forwards() {
            let bank = (0..2)
                .find(|&i| d.dist.forwarded_src[i])
                .and_then(|i| d.op.srcs[i])
                .map_or(RegBank::Int, ArchReg::bank);
            InstrClass::for_operand_bank(bank)
        } else {
            InstrClass::for_operand_bank(d.op.dest.map_or(RegBank::Int, ArchReg::bank))
        };
        ReadyEntry {
            seq: d.op.seq,
            act,
            slot_class,
            slave_receives: d.dist.slave_receives,
            forwards: d.forwards(),
            master: d.dist.master.index() as u8,
            slave: d.dist.slave.map_or(u8::MAX, |s| s.index() as u8),
        }
    }
}

/// Memoized front-end work for the op at a stalled dispatch cursor.
///
/// When dispatch blocks on a structural resource (dispatch-queue slots
/// or physical registers), the simulator retries the same trace index
/// every live cycle until the resource frees — recomputing the unpack,
/// the distribution vote, and the physical-register demand each time,
/// even though none of their inputs can change while the cursor holds
/// still (`balance` and the assignment only move when something
/// dispatches or reassigns, and both advance or clear the memo). The
/// memo caches all of it keyed by cursor, so a stalled retry costs a
/// handful of free-count compares. Register-starved workloads spend
/// the majority of their cycles here (`stall_regs` in Table 2's `ora`
/// row covers ~9 in 10 cycles), which makes this the single hottest
/// path in the live-cycle loop.
#[derive(Debug, Clone, Copy)]
struct DispatchMemo {
    /// Trace index the memo describes; a mismatch invalidates it.
    cursor: usize,
    op: TraceOp,
    dist: Distribution,
    phys: PhysRegs,
    dq_needed: [u32; 2],
    int_needed: [i64; 2],
    fp_needed: [i64; 2],
}

/// One registration on a producer's wakeup list.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    consumer: u64,
    action: u8,
    next: u32,
}

/// A free-list arena of wakeup-list nodes: zero allocations once the
/// steady-state high-water mark is reached.
#[derive(Debug, Default)]
struct WaiterArena {
    nodes: Vec<Waiter>,
    free: u32,
    /// Number of nodes on the free list. Maintained so the invariant
    /// checker can audit `reachable + free == nodes` every validated
    /// cycle without walking the free list.
    free_len: u32,
}

impl WaiterArena {
    fn new() -> WaiterArena {
        WaiterArena { nodes: Vec::new(), free: NIL, free_len: 0 }
    }

    /// Links a new waiter in front of `head`, returning the new head.
    fn push(&mut self, head: u32, consumer: u64, action: u8) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            self.free_len -= 1;
            *node = Waiter { consumer, action, next: head };
            idx
        } else {
            self.nodes.push(Waiter { consumer, action, next: head });
            u32::try_from(self.nodes.len() - 1).expect("waiter arena fits u32")
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
        self.free_len += 1;
    }

    /// Releases a whole list.
    fn release_list(&mut self, head: u32) {
        let mut idx = head;
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            self.release(idx);
            idx = next;
        }
    }

    /// Drops every waiter with `consumer >= from_seq` (squashed by a
    /// replay), returning the new head. Order is not preserved; delivery
    /// order does not matter (availability folds through `max`).
    fn purge_squashed(&mut self, head: u32, from_seq: u64) -> u32 {
        let mut new_head = NIL;
        let mut idx = head;
        while idx != NIL {
            let node = self.nodes[idx as usize];
            if node.consumer < from_seq {
                self.nodes[idx as usize].next = new_head;
                new_head = idx;
            } else {
                self.release(idx);
            }
            idx = node.next;
        }
        new_head
    }
}

#[derive(Debug, Clone)]
struct DynInstr {
    op: TraceOp,
    dist: Distribution,
    /// Physical registers allocated at dispatch, freed at retire/squash.
    phys: crate::dist::PhysRegs,

    /// Readiness bookkeeping for the master copy.
    m_wait: WaitState,
    /// Readiness bookkeeping for the slave copy (unused when single).
    s_wait: WaitState,
    /// Wakeup list notified when `master_done` becomes known.
    w_done: u32,
    /// Wakeup list notified when `slave_write` becomes known.
    w_write: u32,

    master_issued: Option<u64>,
    /// Cycle from which consumers in the master's cluster may issue.
    master_done: Option<u64>,
    slave_issued: Option<u64>,
    /// Cycle from which consumers in the slave's cluster may issue.
    slave_write: Option<u64>,
    /// Scenario-five wake already performed.
    woke: bool,
    mispredicted: bool,

    dq_master_freed: bool,
    dq_slave_freed: bool,
    /// Operand-transfer-buffer entry allocated and not yet scheduled to
    /// free (lives in the *master's* cluster).
    otb_held: bool,
    /// Result-transfer-buffer entry allocated and not yet scheduled to
    /// free (lives in the *slave's* cluster).
    rtb_held: bool,
}

impl DynInstr {
    fn forwards(&self) -> bool {
        self.dist.forwarded_src.iter().any(|&f| f)
    }

    /// Whether everything the instruction must do has happened by `now`.
    fn complete(&self, now: u64) -> bool {
        if !matches!(self.master_done, Some(d) if d <= now) {
            return false;
        }
        if self.dist.slave_receives && !matches!(self.slave_write, Some(w) if w <= now) {
            return false;
        }
        true
    }
}

/// Why fetch is waiting for `fetch_resume_at`; each variant charges its
/// own `SimStats` stall counter, one cycle at a time, in `dispatch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchStall {
    Icache,
    Replay,
    /// Redirect after a resolved mispredicted branch.
    Branch,
    /// Dynamic-reassignment state-movement penalty.
    Reassign,
}

struct Sim<'a, T: TraceSource + ?Sized, P: Probe = NullProbe, H: HostProf = NullHostProf> {
    cfg: &'a ProcessorConfig,
    assign: mcl_isa::assign::RegisterAssignment,
    trace: &'a T,
    cursor: usize,
    now: u64,

    window: VecDeque<DynInstr>,
    base: u64,

    dq_free: [u32; 2],
    int_free: [i64; 2],
    fp_free: [i64; 2],
    otb_free: [u32; 2],
    rtb_free: [u32; 2],
    /// Busy-until cycle of each unpipelined divider unit, per cluster
    /// (fixed storage; `dividers` are in use).
    div_busy_until: [[u64; MAX_DIVIDERS]; 2],
    dividers: usize,
    /// Per cluster, per dense register index: youngest in-flight writer.
    producers: [[Option<u64>; 64]; 2],

    /// Wakeup-list node storage.
    waiters: WaiterArena,
    /// Per cluster: copies whose operands are all available, kept
    /// sorted by age — the issue pass walks exactly these. A sorted
    /// `Vec` beats a `BTreeSet` here: the set is small (a handful of
    /// copies), is snapshotted every live cycle, and age-ordered
    /// iteration is the hot operation.
    ready: [Vec<ReadyEntry>; 2],
    /// Per cluster: lazily-invalidated min-heap over copies still
    /// waiting for operands (issue-disorder accounting).
    waiting_min: [BinaryHeap<Reverse<(u64, u8)>>; 2],
    /// Copies whose last operand time became known, to enter the ready
    /// set at the scheduled cycle. Key `seq << 1 | action`, data the
    /// cluster index.
    future_ready: TimeQ,
    /// Scheduled scenario-five wake checks, keyed by seq.
    wake_events: TimeQ,
    /// Scheduled completions for the progress check (lazily invalidated
    /// on squash), as `(cycle, seq, DONE/WRITE)`. A plain lazy min-heap
    /// rather than a [`TimeQ`]: the progress check only ever asks for
    /// the earliest live entry, so O(1) peek beats the wheel's bitmap
    /// walk, and tie order among same-cycle events is unobservable.
    completions: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Reusable snapshot of one cluster's ready set for the issue pass.
    scratch_pass: Vec<ReadyEntry>,
    /// Reusable drain buffer for replay squashes.
    scratch_squash: Vec<DynInstr>,
    /// Reusable drain buffer for [`TimeQ::pop_due`] consumers.
    scratch_events: Vec<Entry>,
    /// Reusable per-window-slot tallies for the invariant checker
    /// (wakeup registrations per copy, scheduled-completion marks).
    scratch_regs: Vec<[u32; 2]>,
    scratch_sched: Vec<[bool; 2]>,
    /// Physical-register capacities under the current assignment
    /// (recomputed on reassignment), so the per-cycle checker does not
    /// re-derive them from the architectural register map.
    reg_caps: ([i64; 2], [i64; 2]),

    fetch_resume_at: u64,
    fetch_stall: FetchStall,
    /// Sequence number of the unresolved mispredicted branch blocking
    /// fetch, if any.
    fetch_blocked_by: Option<u64>,

    /// Pending predictor updates, keyed by seq so same-cycle
    /// resolutions update the predictor in age order; data packed by
    /// [`pack_branch`].
    pending_bpred: TimeQ,
    /// Scheduled transfer-buffer credit returns. Key
    /// `cluster << 1 | OTB/RTB`.
    buffer_frees: TimeQ,

    predictor: Box<dyn BranchPredictor + Send>,
    icache: Cache,
    dcache: Cache,

    balance: [u64; 2],
    /// See [`DispatchMemo`]: valid only while the cursor it names is
    /// the next op to dispatch and no dispatch, replay, or
    /// reassignment has run since it was recorded.
    dispatch_memo: Option<DispatchMemo>,
    stats: SimStats,
    events: Option<EventLog>,

    /// Set during the issue pass when a ready copy was blocked *only* by
    /// a full transfer buffer.
    blocked_on_buffer: bool,
    no_progress_cycles: u32,
    /// Invariant-checking level (from the configuration).
    check: CheckLevel,
    /// Replay exceptions taken since the last retirement; the checker's
    /// replay-forward-progress rule bounds this.
    replays_since_retire: u32,
    /// Configured resource-accounting faults not yet applied.
    pending_faults: Vec<FaultInjection>,
    /// Set by [`FaultInjection::StallRetire`]: the retirement stage is
    /// latched off for the rest of the run.
    retire_stalled: bool,
    /// The window base at the last replay; a second deadlock without any
    /// intervening retirement escalates to a full squash (guaranteed
    /// forward progress — the replayed youngest holder would otherwise
    /// re-acquire the freed entry and recreate the deadlock).
    last_replay_base: Option<u64>,
    /// Untriggered dynamic-reassignment points, in configuration order.
    pending_reassign: Vec<crate::config::ReassignmentPoint>,
    /// A reassignment is waiting for the pipeline to drain.
    reassign_draining: bool,
    /// Dead-cycle-skip counters (stay zero under [`Engine::Ticked`]).
    ff: FastForward,
    /// The observability probe; every call site is gated on the
    /// monomorphization-time constant `P::ENABLED`, so the default
    /// [`NullProbe`] build carries no probe code at all.
    probe: P,
    /// The host phase profiler; gated on `H::ENABLED` the same way.
    /// Unlike probes it never forces single-stepping — a profiled run
    /// takes the real engine path, fast-forward included.
    hostprof: H,
}

impl<'a, T: TraceSource + ?Sized> Sim<'a, T> {
    fn new(cfg: &'a ProcessorConfig, trace: &'a T) -> Sim<'a, T> {
        Sim::with_parts(cfg, trace, NullProbe, NullHostProf)
    }
}

impl<'a, T: TraceSource + ?Sized, P: Probe> Sim<'a, T, P> {
    fn with_probe(cfg: &'a ProcessorConfig, trace: &'a T, probe: P) -> Sim<'a, T, P> {
        Sim::with_parts(cfg, trace, probe, NullHostProf)
    }
}

impl<'a, T: TraceSource + ?Sized, P: Probe, H: HostProf> Sim<'a, T, P, H> {
    fn with_parts(
        cfg: &'a ProcessorConfig,
        trace: &'a T,
        probe: P,
        hostprof: H,
    ) -> Sim<'a, T, P, H> {
        let assign = cfg.register_assignment();
        let (int_free, fp_free) = free_lists_for(cfg, &assign);
        assert!(cfg.fp_dividers as usize <= MAX_DIVIDERS, "too many divider units");

        Sim {
            cfg,
            assign,
            trace,
            cursor: 0,
            now: 0,
            window: VecDeque::new(),
            base: 0,
            dq_free: [cfg.dq_entries; 2],
            int_free,
            fp_free,
            otb_free: [cfg.operand_buffer; 2],
            rtb_free: [cfg.result_buffer; 2],
            div_busy_until: [[0; MAX_DIVIDERS]; 2],
            dividers: cfg.fp_dividers as usize,
            producers: [[None; 64]; 2],
            waiters: WaiterArena::new(),
            ready: [Vec::new(), Vec::new()],
            waiting_min: [BinaryHeap::new(), BinaryHeap::new()],
            future_ready: TimeQ::new(),
            wake_events: TimeQ::new(),
            completions: BinaryHeap::new(),
            scratch_pass: Vec::new(),
            scratch_squash: Vec::new(),
            scratch_events: Vec::new(),
            scratch_regs: Vec::new(),
            scratch_sched: Vec::new(),
            reg_caps: (int_free, fp_free),
            fetch_resume_at: 0,
            fetch_stall: FetchStall::Icache,
            fetch_blocked_by: None,
            pending_bpred: TimeQ::new(),
            buffer_frees: TimeQ::new(),
            predictor: cfg.predictor.build(),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            balance: [0; 2],
            dispatch_memo: None,
            stats: SimStats::default(),
            events: cfg.record_events.then(EventLog::new),
            blocked_on_buffer: false,
            no_progress_cycles: 0,
            check: cfg.check_level,
            replays_since_retire: 0,
            pending_faults: cfg.faults.clone(),
            retire_stalled: false,
            last_replay_base: None,
            pending_reassign: cfg.reassignments.clone(),
            reassign_draining: false,
            ff: FastForward::default(),
            probe,
            hostprof,
        }
    }

    fn log(&mut self, seq: u64, cluster: Option<ClusterId>, kind: EventKind) {
        let now = self.now;
        if let Some(log) = &mut self.events {
            log.push(now, seq, cluster, kind);
        }
    }

    fn log_at(&mut self, cycle: u64, seq: u64, cluster: Option<ClusterId>, kind: EventKind) {
        if let Some(log) = &mut self.events {
            log.push(cycle, seq, cluster, kind);
        }
    }

    fn run(&mut self) -> Result<SimResult, SimError> {
        // Fast-forward only when nothing needs to see individual dead
        // cycles: probes sample per cycle, and cycle-level checking
        // validates per cycle, so both force single-stepping (their
        // observations are of dead cycles that log nothing and change
        // no stats, which is why on/off stays byte-identical).
        let fast_forward =
            self.cfg.engine == Engine::Event && !P::ENABLED && self.check != CheckLevel::Cycle;
        // Cooperative hard watchdog: the deadline is a thread-local
        // token (not part of the configuration — configurations key
        // result caches), polled every `WATCHDOG_STRIDE` steps so the
        // wall-clock read stays off the per-cycle path. Steps, not
        // cycles: the event engine jumps cycle counts arbitrarily.
        const WATCHDOG_STRIDE: u32 = 4096;
        let deadline = crate::watchdog::deadline();
        let mut until_poll = WATCHDOG_STRIDE;
        if H::ENABLED {
            self.hostprof.begin();
        }
        while self.cursor < self.trace.len() || !self.window.is_empty() {
            if self.now >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
            if let Some(deadline) = deadline {
                until_poll -= 1;
                if until_poll == 0 {
                    until_poll = WATCHDOG_STRIDE;
                    if std::time::Instant::now() >= deadline {
                        return Err(SimError::Timeout { cycle: self.now });
                    }
                }
            }
            let activity = self.step()?;
            // Anything dispatched, issued, retired, or woken this cycle
            // can cascade into the next one, so the next cycle is never
            // provably dead — don't even pay for the attempt.
            if fast_forward && activity == 0 {
                if H::ENABLED {
                    // Close the inter-phase span first so the progress
                    // check and loop overhead stay charged to Loop, not
                    // to the fast-forward bookkeeping.
                    self.hostprof.mark(HostPhase::Loop);
                }
                self.try_fast_forward();
                if H::ENABLED {
                    self.hostprof.mark(HostPhase::FastForward);
                }
            }
        }
        if H::ENABLED {
            self.hostprof.finish();
        }
        self.stats.cycles = self.now;
        self.stats.icache = self.icache.stats();
        self.stats.dcache = self.dcache.stats();
        Ok(SimResult { stats: self.stats.clone(), events: self.events.take(), ff: self.ff })
    }

    /// Simulates one cycle, returning how many retire/wake/issue/
    /// dispatch actions it performed (the same count the progress
    /// check sees; the event engine only attempts a fast-forward after
    /// an actionless cycle).
    fn step(&mut self) -> Result<u32, SimError> {
        if H::ENABLED {
            // Telescoping sample: everything since the previous cycle's
            // last mark (progress check, watchdog poll, loop overhead)
            // lands in the Loop bucket.
            self.hostprof.mark(HostPhase::Loop);
        }
        self.blocked_on_buffer = false;
        self.inject_faults();

        self.process_buffer_frees();
        self.process_branch_resolutions();
        if H::ENABLED {
            self.hostprof.mark(HostPhase::TimeQ);
        }
        let retired = self.retire();
        if H::ENABLED {
            self.hostprof.mark(HostPhase::Retire);
        }
        let woke = self.wake_suspended_slaves();
        self.drain_future_ready();
        if H::ENABLED {
            self.hostprof.mark(HostPhase::Wakeup);
        }
        let mut issued = 0;
        let mut issued_per = [0u32; 2];
        for c in 0..self.cfg.clusters {
            let n = self.issue_cluster(ClusterId::new(c));
            issued_per[usize::from(c)] = n;
            issued += n;
        }
        if H::ENABLED {
            self.hostprof.mark(HostPhase::Issue);
        }
        let dispatched = self.dispatch();
        if dispatched > 0 {
            self.stats.dispatch_cycles += 1;
        }
        if H::ENABLED {
            self.hostprof.mark(HostPhase::Dispatch);
        }

        let validate = match self.check {
            CheckLevel::Off => false,
            CheckLevel::Retire => retired > 0,
            CheckLevel::Cycle => true,
        };
        if validate {
            self.validate_invariants(&issued_per)?;
        }
        if H::ENABLED {
            self.hostprof.mark(HostPhase::Checker);
            self.hostprof.live_cycle();
        }
        let activity = retired + woke + issued + dispatched;
        self.check_progress(activity)?;
        if P::ENABLED {
            let snap = self.cycle_snapshot();
            self.probe.cycle_end(&snap);
        }
        self.now += 1;
        Ok(activity)
    }

    /// End-of-cycle occupancy for [`Probe::cycle_end`].
    fn cycle_snapshot(&self) -> CycleSnapshot {
        let mut snap = CycleSnapshot {
            cycle: self.now,
            window: self.window.len() as u32,
            ..CycleSnapshot::default()
        };
        for c in 0..usize::from(self.cfg.clusters) {
            snap.dq_used[c] = self.cfg.dq_entries.saturating_sub(self.dq_free[c]);
            snap.otb_used[c] = self.cfg.operand_buffer.saturating_sub(self.otb_free[c]);
            snap.rtb_used[c] = self.cfg.result_buffer.saturating_sub(self.rtb_free[c]);
            snap.int_free[c] = self.int_free[c];
            snap.fp_free[c] = self.fp_free[c];
        }
        snap
    }

    /// Applies due fault-injection hooks (testing only; see
    /// [`ProcessorConfig::faults`]). A leak decrements a free count with
    /// no matching holder, which a correct checker must report; the
    /// event-targeting faults wait in the pending list until their
    /// target structure (a live completion, a blocking branch, an
    /// in-flight operand delivery) exists, then corrupt it.
    fn inject_faults(&mut self) {
        if self.pending_faults.is_empty() {
            return;
        }
        let now = self.now;
        let n = usize::from(self.cfg.clusters);
        let mut i = 0;
        while i < self.pending_faults.len() {
            let fault = self.pending_faults[i].clone();
            let armed = fault.cycle() <= now;
            let due = armed
                && match &fault {
                    FaultInjection::LeakOperandBuffer { .. }
                    | FaultInjection::LeakResultBuffer { .. }
                    | FaultInjection::CorruptTransferCredit { .. }
                    | FaultInjection::LeakPhysReg { .. }
                    | FaultInjection::StallRetire { .. } => true,
                    FaultInjection::DropCompletion { .. } => {
                        self.next_live_completion(now).is_some()
                    }
                    FaultInjection::StickBranchResolution { .. } => {
                        self.blocking_branch_resolution().is_some()
                    }
                    FaultInjection::DelayOperandDelivery { .. } => {
                        !self.future_ready.is_empty()
                    }
                };
            if !due {
                i += 1;
                continue;
            }
            self.pending_faults.remove(i);
            match fault {
                FaultInjection::LeakOperandBuffer { .. } => {
                    for c in 0..n {
                        self.otb_free[c] = self.otb_free[c].saturating_sub(1);
                    }
                }
                FaultInjection::LeakResultBuffer { .. } => {
                    for c in 0..n {
                        self.rtb_free[c] = self.rtb_free[c].saturating_sub(1);
                    }
                }
                FaultInjection::DropCompletion { .. } => {
                    self.drop_next_live_completion(now);
                }
                FaultInjection::StickBranchResolution { .. } => {
                    let seq = self.blocking_branch_resolution().expect("checked due");
                    self.pending_bpred.retain(|e| e.key != seq);
                }
                FaultInjection::CorruptTransferCredit { .. } => {
                    for c in 0..n {
                        self.otb_free[c] += 1;
                        self.rtb_free[c] += 1;
                    }
                }
                FaultInjection::DelayOperandDelivery { delay, .. } => {
                    let e = self.future_ready.pop_earliest().expect("checked due");
                    self.future_ready.schedule(
                        e.cycle.saturating_add(delay),
                        e.key,
                        e.data,
                    );
                }
                FaultInjection::LeakPhysReg { .. } => {
                    for c in 0..n {
                        self.int_free[c] -= 1;
                    }
                }
                FaultInjection::StallRetire { .. } => {
                    self.retire_stalled = true;
                }
            }
        }
    }

    /// The sequence number of the mispredicted branch currently blocking
    /// fetch, provided its resolution event is still scheduled (the
    /// stick-branch-resolution fault's target).
    fn blocking_branch_resolution(&self) -> Option<u64> {
        let seq = self.fetch_blocked_by?;
        self.pending_bpred.iter().any(|e| e.key == seq).then_some(seq)
    }

    /// Removes the earliest live completion event strictly after `now`
    /// from the queue (the drop-completion fault). Stale and
    /// already-fired entries discarded along the way would have been
    /// discarded lazily anyway, so only the live event's loss is
    /// observable.
    fn drop_next_live_completion(&mut self, now: u64) {
        while let Some(&Reverse((cycle, seq, evt))) = self.completions.peek() {
            if cycle <= now {
                self.completions.pop();
                continue;
            }
            let live = match self.win_index(seq) {
                None => false,
                Some(wi) => {
                    let d = &self.window[wi];
                    if evt == u64::from(DONE_EVT) {
                        d.master_done == Some(cycle)
                    } else {
                        d.slave_write == Some(cycle)
                    }
                }
            };
            self.completions.pop();
            if live {
                return;
            }
        }
    }

    // -- dead-cycle fast-forward -------------------------------------------

    /// Event-engine core: after a stepped cycle that performed no
    /// action, jump `now` straight to the next scheduled event if the
    /// span in between is provably dead — no cluster could dispatch,
    /// issue, or retire on any skipped cycle — charging the span to
    /// the same stall bucket the ticked loop would have charged cycle
    /// by cycle. Conservative: any doubt aborts the jump and the
    /// engine single-steps, so the result is byte-identical to
    /// [`Engine::Ticked`] by construction. Several checks below lean
    /// on the actionless precondition (the caller gates on it): ready
    /// copies were all evaluated against a fresh issue budget this
    /// cycle, and no in-pass state (budget, buffers, dividers) was
    /// consumed.
    fn try_fast_forward(&mut self) {
        let now = self.now;
        // Run finished, or activity that could cascade this cycle:
        // single-step. A non-zero no-progress count must keep ticking so
        // the replay/wedge escalation sees the same cycle numbers.
        if self.cursor >= self.trace.len() && self.window.is_empty() {
            return;
        }
        if self.no_progress_cycles > 0 {
            return;
        }
        // Issue: a ready copy is only compatible with a dead span when
        // it is provably unissuable, side-effect free, on every skipped
        // cycle. Because this cycle issued nothing, every ready copy
        // was just evaluated against a fresh budget and blocked, for
        // one of exactly three reasons, mirroring the issue pass's
        // check order:
        //
        // - the width rules — a fresh budget that cannot accept the
        //   class never will, so the copy never issues (no stats);
        // - a busy divider, which frees at a known cycle that joins
        //   the jump targets (no stats) — it is NOT always announced
        //   by a completion event, because a squashed divide keeps its
        //   unit busy after its event is discarded as stale;
        // - a full transfer buffer, which only refills through a
        //   scheduled buffer-free event (already a jump target). The
        //   ticked loop charges `rtb_full_stalls`/`otb_full_stalls`
        //   once per blocked copy per cycle, so the span charges the
        //   per-cycle count times the span length below.
        //
        // Anything else would issue: abort.
        let mut div_wake = None;
        let mut rtb_stalls = 0u64;
        let mut otb_stalls = 0u64;
        for ci in 0..2 {
            let rules = &self.cfg.issue_rules;
            if rules.total == 0 {
                // Budget exhausted before the first copy: the issue
                // pass breaks immediately and evaluates nothing.
                continue;
            }
            for &e in &self.ready[ci] {
                if self.win_index(e.seq).is_none() {
                    return;
                }
                if rules.class_limit(e.slot_class) == 0 {
                    continue; // permanently width-blocked
                }
                if e.act == ACT_MASTER {
                    if e.slot_class == InstrClass::FpDiv {
                        let free =
                            self.div_busy_until[ci][..self.dividers].iter().copied().min();
                        if let Some(free) = free {
                            if free > now {
                                div_wake = Some(div_wake.map_or(free, |w: u64| w.min(free)));
                                continue;
                            }
                        } else {
                            // No dividers configured: unissuable, but the
                            // ticked loop's wedge detection must see it.
                            return;
                        }
                    }
                    if e.slave_receives && self.rtb_free[usize::from(e.slave)] == 0 {
                        rtb_stalls += 1;
                        continue;
                    }
                } else if e.forwards && self.otb_free[usize::from(e.master)] == 0 {
                    otb_stalls += 1;
                    continue;
                }
                return;
            }
        }
        // Retire: the front might retire next cycle (retirement is
        // in-order, so checking the front suffices).
        if self.window.front().is_some_and(|d| d.complete(now)) {
            return;
        }
        // Dispatch: the stall at the cursor must be one that only a
        // scheduled event can lift.
        let Some(cause) = self.dead_dispatch_cause() else { return };
        // Earliest live completion (also discards stale events, exactly
        // as the ticked progress check does when it consults the queue).
        let live_completion = self.next_live_completion(now);
        // The skipped cycles never run the wedge/replay escalation, so
        // fast-forwarding is only sound if the ticked loop's progress
        // check would also have seen future work on every one of them.
        // Every term below is constant across the dead span. Applied
        // with the window empty too: an empty window with trace left
        // and no future work is exactly the span the progress check
        // counts toward `Wedged`, so it must tick cycle by cycle.
        let span_future_work = self.fetch_resume_at > now
            || !self.pending_bpred.is_empty()
            || !self.buffer_frees.is_empty()
            || live_completion.is_some();
        if !span_future_work {
            return;
        }
        // The jump target: the earliest cycle anything is scheduled to
        // happen. Everything the engine does originates from one of
        // these queues (or fetch resuming, or a fault firing).
        let mut target = u64::MAX;
        for cycle in [
            self.future_ready.next_cycle(),
            self.wake_events.next_cycle(),
            self.buffer_frees.next_cycle(),
            self.pending_bpred.next_cycle(),
            live_completion,
            div_wake,
        ]
        .into_iter()
        .flatten()
        {
            target = target.min(cycle);
        }
        if self.fetch_resume_at > now {
            target = target.min(self.fetch_resume_at);
        }
        for fault in &self.pending_faults {
            let cycle = fault.cycle();
            if cycle <= now {
                // An armed fault waiting for its target structure to
                // exist must observe every cycle.
                return;
            }
            target = target.min(cycle);
        }
        if target == u64::MAX {
            return;
        }
        // The ticked loop errors out upon reaching the cycle limit;
        // jumping past it would skip that check.
        target = target.min(self.cfg.max_cycles);
        if target <= now {
            return;
        }

        let n = target - now;
        match cause {
            DeadCause::Drain => self.stats.drain_cycles += n,
            DeadCause::BranchWait => self.stats.stall_branch += n,
            DeadCause::FetchWait => match self.fetch_stall {
                FetchStall::Icache => self.stats.stall_icache += n,
                FetchStall::Replay => self.stats.stall_replay += n,
                FetchStall::Branch => self.stats.stall_branch += n,
                FetchStall::Reassign => self.stats.stall_reassign += n,
            },
            DeadCause::ReassignDrain => self.stats.stall_reassign += n,
            DeadCause::DispatchQueue(pc) => {
                self.stats.stall_dq += n;
                // Each skipped cycle re-probes the fetch line and hits.
                self.icache.record_repeat_hits(pc, n);
            }
            DeadCause::Registers(pc) => {
                self.stats.stall_regs += n;
                self.icache.record_repeat_hits(pc, n);
            }
        }
        // Each skipped cycle re-runs the same issue pass against the
        // same full buffers: charge the per-cycle stall counts once per
        // skipped cycle, exactly as the ticked loop would.
        self.stats.rtb_full_stalls += rtb_stalls * n;
        self.stats.otb_full_stalls += otb_stalls * n;
        self.ff.skipped_cycles += n;
        self.ff.jumps += 1;
        self.now = target;
    }

    /// Mirrors the stall checks at the top of [`Sim::dispatch`] without
    /// mutating anything: the cause returned holds on the current cycle
    /// and — because every input it reads is constant while nothing
    /// dispatches, issues, retires, or pops an event — on every cycle
    /// up to the next scheduled event. Returns `None` when dispatch
    /// could make progress (or take an icache miss, which mutates cache
    /// state and so must be stepped).
    fn dead_dispatch_cause(&self) -> Option<DeadCause> {
        if self.cursor >= self.trace.len() {
            return Some(DeadCause::Drain);
        }
        if self.fetch_blocked_by.is_some() {
            return Some(DeadCause::BranchWait);
        }
        if self.now < self.fetch_resume_at {
            return Some(DeadCause::FetchWait);
        }
        // An actionless cycle ran dispatch before this check, so a
        // stall at the cursor left a memo behind; reuse it instead of
        // re-deriving the distribution (the inputs match for the same
        // reason the dispatch retry may reuse it).
        if let Some(m) = self.dispatch_memo.filter(|m| m.cursor == self.cursor) {
            if self.reassign_draining
                || self.pending_reassign.first().is_some_and(|r| r.trigger_pc == m.op.pc)
            {
                return (!self.window.is_empty()).then_some(DeadCause::ReassignDrain);
            }
            if !(0..2).all(|c| self.dq_free[c] >= m.dq_needed[c]) {
                return Some(DeadCause::DispatchQueue(m.op.pc));
            }
            if !(0..2)
                .all(|c| self.int_free[c] >= m.int_needed[c] && self.fp_free[c] >= m.fp_needed[c])
            {
                return Some(DeadCause::Registers(m.op.pc));
            }
            return None;
        }
        let op = self.trace.get(self.cursor);
        if self.reassign_draining
            || self.pending_reassign.first().is_some_and(|r| r.trigger_pc == op.pc)
        {
            // With an empty window the switch itself would run: step it.
            return (!self.window.is_empty()).then_some(DeadCause::ReassignDrain);
        }
        if !self.icache.probe(op.pc, self.now) {
            return None;
        }
        let dist = distribute(&op, &self.assign, &self.balance);
        let mut dq_needed = [0u32; 2];
        dq_needed[dist.master.index()] += 1;
        if let Some(s) = dist.slave {
            dq_needed[s.index()] += 1;
        }
        if !(0..2).all(|c| self.dq_free[c] >= dq_needed[c]) {
            return Some(DeadCause::DispatchQueue(op.pc));
        }
        let phys = dist.phys_needed(&op, &self.assign);
        let mut int_needed = [0i64; 2];
        let mut fp_needed = [0i64; 2];
        for (c, bank) in phys.iter() {
            match bank {
                RegBank::Int => int_needed[c.index()] += 1,
                RegBank::Fp => fp_needed[c.index()] += 1,
            }
        }
        if !(0..2).all(|c| self.int_free[c] >= int_needed[c] && self.fp_free[c] >= fp_needed[c]) {
            return Some(DeadCause::Registers(op.pc));
        }
        None
    }

    // -- cycle-start event processing --------------------------------------

    fn process_buffer_frees(&mut self) {
        if self.buffer_frees.is_empty() {
            return;
        }
        let mut due = std::mem::take(&mut self.scratch_events);
        self.buffer_frees.pop_due(self.now, &mut due);
        for e in &due {
            let cluster = (e.key >> 1) as usize;
            if e.key & 1 == u64::from(OTB) {
                self.otb_free[cluster] += 1;
            } else {
                self.rtb_free[cluster] += 1;
            }
        }
        due.clear();
        self.scratch_events = due;
    }

    fn process_branch_resolutions(&mut self) {
        if self.pending_bpred.is_empty() {
            return;
        }
        // Keyed by seq: same-cycle resolutions update the predictor in
        // age order, as the heap formulation did.
        let mut due = std::mem::take(&mut self.scratch_events);
        self.pending_bpred.pop_due(self.now, &mut due);
        for e in &due {
            let pc = e.data >> 2;
            let taken = e.data & 0b10 != 0;
            let mispredicted = e.data & 0b1 != 0;
            self.predictor.update(pc, taken);
            if mispredicted && self.fetch_blocked_by == Some(e.key) {
                self.fetch_blocked_by = None;
                // Redirect costs one further cycle after resolution;
                // `dispatch` charges it to `stall_branch` when it hits
                // the waiting period (no eager increment here — the
                // blocked cycles themselves are counted as they pass).
                self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
                self.fetch_stall = FetchStall::Branch;
            }
        }
        due.clear();
        self.scratch_events = due;
    }

    // -- retire -------------------------------------------------------------

    fn retire(&mut self) -> u32 {
        if self.retire_stalled {
            return 0;
        }
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(front) = self.window.front() else { break };
            if !front.complete(self.now) {
                break;
            }
            let d = self.window.pop_front().expect("front exists");
            let seq = d.op.seq;
            for (c, bank) in d.phys.iter() {
                match bank {
                    RegBank::Int => self.int_free[c.index()] += 1,
                    RegBank::Fp => self.fp_free[c.index()] += 1,
                }
            }
            debug_assert!(d.w_done == NIL && d.w_write == NIL, "waiters notified before retire");
            self.log(seq, None, EventKind::Retired);
            if P::ENABLED {
                self.probe.retired(self.now, seq);
            }
            self.base = seq + 1;
            self.last_replay_base = None; // retirement = forward progress
            self.replays_since_retire = 0;
            self.stats.retired += 1;
            retired += 1;
        }
        retired
    }

    // -- scenario-five wake -------------------------------------------------

    fn wake_suspended_slaves(&mut self) -> u32 {
        let mut woke = 0;
        let now = self.now;
        if self.wake_events.is_empty() {
            return 0;
        }
        // Wake checks are scheduled at master completion; (cycle, seq)
        // order reproduces the window-order scan of the paper's
        // per-cycle wake pass.
        let mut due = std::mem::take(&mut self.scratch_events);
        self.wake_events.pop_due(now, &mut due);
        for e in &due {
            let seq = e.key;
            let Some(wi) = self.win_index(seq) else { continue };
            let eligible = {
                let d = &self.window[wi];
                d.dist.slave_receives
                    && d.forwards()
                    && !d.woke
                    && d.slave_issued.is_some()
                    && matches!(d.master_done, Some(done) if done <= now)
            };
            if !eligible {
                continue; // stale event from a squashed incarnation
            }
            let slave = {
                let d = &mut self.window[wi];
                let slave = d.dist.slave.expect("scenario five has a slave");
                d.woke = true;
                d.slave_write = Some(now + 1);
                if d.rtb_held {
                    d.rtb_held = false;
                } else {
                    unreachable!("scenario-five master allocated the result entry");
                }
                if !d.dq_slave_freed {
                    d.dq_slave_freed = true;
                    self.dq_free[slave.index()] += 1;
                }
                slave
            };
            let head = std::mem::replace(&mut self.window[wi].w_write, NIL);
            self.notify_waiters(head, now + 1, DeliverySource::SlaveWrite, seq);
            self.completions.push(Reverse((now + 1, seq, u64::from(WRITE_EVT))));
            self.buffer_frees.schedule(now + 1, (slave.index() as u64) << 1 | u64::from(RTB), 0);
            if P::ENABLED {
                self.probe.forwarded(now + 1, seq, TransferKind::Result, TransferPhase::Release, slave);
            }
            self.log(seq, Some(slave), EventKind::SlaveWoke);
            self.log_at(now + 1, seq, Some(slave), EventKind::RegWritten);
            woke += 1;
        }
        due.clear();
        self.scratch_events = due;
        woke
    }

    // -- issue ----------------------------------------------------------------

    /// Window index of a live instruction, if `seq` is still in flight.
    fn win_index(&self, seq: u64) -> Option<usize> {
        if seq < self.base {
            return None;
        }
        let wi = (seq - self.base) as usize;
        (wi < self.window.len()).then_some(wi)
    }

    /// Operand availability as seen from `cluster` at dispatch time:
    /// the cycle is either already known, or becomes known when the
    /// producer's completion (`master_done`) or slave register write
    /// (`slave_write`) is scheduled — the returned window index says
    /// which wakeup list to register on.
    fn avail_for(&self, dep: Option<u64>, cluster: ClusterId) -> Avail {
        let Some(p) = dep else { return Avail::Known(0) };
        let Some(wi) = self.win_index(p) else { return Avail::Known(0) };
        let d = &self.window[wi];
        if Some(cluster) == d.dist.slave && d.dist.slave_receives {
            match d.slave_write {
                Some(t) => Avail::Known(t),
                None => Avail::WaitWrite(wi),
            }
        } else {
            match d.master_done {
                Some(t) => Avail::Known(t),
                None => Avail::WaitDone(wi),
            }
        }
    }

    /// Records that operand availability for (`consumer`, `action`)
    /// became known (`avail`), enqueueing the copy once its last
    /// operand time is in. `source` and `producer` describe how the
    /// value arrived (probe metadata only — they never affect timing).
    fn deliver(
        &mut self,
        consumer: u64,
        action: u8,
        avail: u64,
        source: DeliverySource,
        producer: Option<u64>,
    ) {
        let Some(wi) = self.win_index(consumer) else { return };
        let d = &mut self.window[wi];
        let st = if action == ACT_MASTER { &mut d.m_wait } else { &mut d.s_wait };
        debug_assert!(st.unknown > 0, "delivery without a registration");
        if st.unknown == 0 {
            return;
        }
        st.unknown -= 1;
        if avail > st.ready_at {
            st.ready_at = avail;
        }
        let all_known = st.unknown == 0;
        let ready_at = st.ready_at;
        let cluster_byte = if all_known {
            let cluster = if action == ACT_MASTER {
                d.dist.master
            } else {
                d.dist.slave.expect("slave action implies a slave")
            };
            cluster.index() as u8
        } else {
            0
        };
        if P::ENABLED && action == ACT_MASTER {
            self.probe.operand_delivered(consumer, avail, source, producer);
        }
        if all_known {
            self.future_ready.schedule(
                ready_at,
                consumer << 1 | u64::from(action),
                u64::from(cluster_byte),
            );
        }
    }

    /// Delivers `avail` to every waiter on a wakeup list. `source` and
    /// `producer` identify the completion or register write that fired
    /// the list (probe metadata only).
    fn notify_waiters(&mut self, head: u32, avail: u64, source: DeliverySource, producer: u64) {
        let mut idx = head;
        while idx != NIL {
            let node = self.waiters.nodes[idx as usize];
            self.waiters.release(idx);
            self.deliver(node.consumer, node.action, avail, source, Some(producer));
            idx = node.next;
        }
    }

    /// Moves copies whose ready cycle has arrived into the per-cluster
    /// ready sets. Runs once per cycle, before the issue passes.
    fn drain_future_ready(&mut self) {
        let now = self.now;
        if self.future_ready.is_empty() {
            return;
        }
        let mut due = std::mem::take(&mut self.scratch_events);
        self.future_ready.pop_due(now, &mut due);
        for e in &due {
            let seq = e.key >> 1;
            let action = (e.key & 1) as u8;
            let cl = e.data as usize;
            let Some(wi) = self.win_index(seq) else { continue };
            let d = &mut self.window[wi];
            // Validate against the *current* incarnation: a squash and
            // re-dispatch may have left a stale event behind.
            let (cluster_ok, issued, st) = if action == ACT_MASTER {
                (d.dist.master.index() == cl, d.master_issued.is_some(), &mut d.m_wait)
            } else {
                (
                    d.dist.slave.is_some_and(|s| s.index() == cl),
                    d.slave_issued.is_some(),
                    &mut d.s_wait,
                )
            };
            if !cluster_ok || issued || st.in_ready || st.unknown != 0 || st.ready_at > now {
                continue;
            }
            st.in_ready = true;
            let entry = ReadyEntry::of(&self.window[wi], action);
            if let Err(pos) = self.ready[cl].binary_search_by_key(&(seq, action), ReadyEntry::key)
            {
                self.ready[cl].insert(pos, entry);
            }
        }
        due.clear();
        self.scratch_events = due;
    }

    /// The oldest copy for `cluster` still waiting on operands, if any
    /// (lazily discarding entries that issued, squashed, or went ready).
    fn min_waiting(&mut self, cluster: usize) -> Option<u64> {
        while let Some(&Reverse((seq, action))) = self.waiting_min[cluster].peek() {
            let live = match self.win_index(seq) {
                None => false,
                Some(wi) => {
                    let d = &self.window[wi];
                    if action == ACT_MASTER {
                        d.dist.master.index() == cluster
                            && d.master_issued.is_none()
                            && !d.m_wait.in_ready
                    } else {
                        d.dist.slave.is_some_and(|s| s.index() == cluster)
                            && d.slave_issued.is_none()
                            && !d.s_wait.in_ready
                    }
                }
            };
            if live {
                return Some(seq);
            }
            self.waiting_min[cluster].pop();
        }
        None
    }

    #[allow(clippy::too_many_lines)]
    fn issue_cluster(&mut self, cluster: ClusterId) -> u32 {
        let ci = cluster.index();
        if self.ready[ci].is_empty() {
            return 0;
        }
        let mut budget = self.cfg.issue_rules.budget();
        let mut issued = 0;
        // Ready-but-blocked copies iterated earlier in this pass: they
        // count toward issue disorder exactly as skipped window slots
        // did in the full-scan formulation.
        let mut blocked_in_pass = 0u64;
        let now = self.now;

        // Snapshot the ready set (age order); deliveries during the
        // pass only schedule *future* cycles, so the set itself gains
        // nothing this cycle, and issued copies are removed directly.
        let mut pass = std::mem::take(&mut self.scratch_pass);
        pass.clear();
        pass.extend_from_slice(&self.ready[ci]);

        for &e in &pass {
            if budget.is_exhausted() {
                break;
            }
            enum Action {
                Master,
                SlaveForward,
                SlaveReceive,
            }
            let (seq, act) = (e.seq, e.act);
            // Classification runs entirely off the cached entry — the
            // window is only dereferenced when the copy issues.
            let action = if act == ACT_MASTER {
                Action::Master
            } else if e.forwards {
                Action::SlaveForward
            } else {
                Action::SlaveReceive
            };

            // ---- structural resources ----
            let slot_class = e.slot_class;
            if !budget.can_take(slot_class) {
                if P::ENABLED && act == ACT_MASTER {
                    self.probe.issue_blocked(now, seq, IssueBlock::Width);
                }
                blocked_in_pass += 1;
                continue;
            }
            match action {
                Action::Master => {
                    if slot_class == InstrClass::FpDiv
                        && !self.div_busy_until[ci][..self.dividers].iter().any(|&b| b <= now)
                    {
                        if P::ENABLED {
                            self.probe.issue_blocked(now, seq, IssueBlock::Width);
                        }
                        blocked_in_pass += 1;
                        continue;
                    }
                    if e.slave_receives && self.rtb_free[usize::from(e.slave)] == 0 {
                        self.stats.rtb_full_stalls += 1;
                        self.blocked_on_buffer = true;
                        if P::ENABLED {
                            self.probe.issue_blocked(now, seq, IssueBlock::RtbFull);
                        }
                        blocked_in_pass += 1;
                        continue;
                    }
                }
                Action::SlaveForward => {
                    if self.otb_free[usize::from(e.master)] == 0 {
                        self.stats.otb_full_stalls += 1;
                        self.blocked_on_buffer = true;
                        if P::ENABLED {
                            self.probe.issue_blocked(now, seq, IssueBlock::OtbFull);
                        }
                        blocked_in_pass += 1;
                        continue;
                    }
                }
                Action::SlaveReceive => {}
            }

            // ---- issue ----
            let wi = self.win_index(seq).expect("ready copies are in flight");
            debug_assert!(
                act != ACT_MASTER
                    || (self.window[wi].dist.master == cluster
                        && self.window[wi].master_issued.is_none())
            );
            assert!(budget.try_take(slot_class));
            // Out-of-order issue: an older copy for this cluster was
            // passed over, either blocked earlier in this pass or still
            // waiting on operands.
            if blocked_in_pass > 0 || self.min_waiting(ci).is_some_and(|w| w < seq) {
                self.stats.issue_disorder += 1;
            }
            issued += 1;
            self.stats.per_cluster_issued[ci] += 1;
            if let Ok(pos) = self.ready[ci].binary_search_by_key(&(seq, act), ReadyEntry::key) {
                self.ready[ci].remove(pos);
            }
            {
                let d = &mut self.window[wi];
                let st = if act == ACT_MASTER { &mut d.m_wait } else { &mut d.s_wait };
                st.in_ready = false;
            }

            match action {
                Action::Master => self.issue_master(wi, cluster),
                Action::SlaveForward => self.issue_slave_forward(wi, cluster),
                Action::SlaveReceive => self.issue_slave_receive(wi, cluster),
            }
        }
        self.scratch_pass = pass;
        issued
    }

    fn issue_master(&mut self, wi: usize, cluster: ClusterId) {
        let now = self.now;
        // Memory access timing (outside the window borrow).
        let (op, class, mem_addr) = {
            let d = &self.window[wi];
            (d.op.op, d.op.class(), d.op.mem_addr)
        };
        let latency = self.cfg.latencies.of(op);
        let mut load_miss = false;
        let done = match class {
            InstrClass::Load => {
                let addr = mem_addr.expect("loads carry an address");
                match self.dcache.access(addr, now, false) {
                    Access::Hit => now + u64::from(latency),
                    Access::Miss { ready_at, .. } => {
                        load_miss = true;
                        ready_at + 1
                    }
                }
            }
            InstrClass::Store => {
                let addr = mem_addr.expect("stores carry an address");
                let _ = self.dcache.access(addr, now, true);
                now + u64::from(latency)
            }
            InstrClass::FpDiv => {
                let unit = self.div_busy_until[cluster.index()][..self.dividers]
                    .iter_mut()
                    .find(|b| **b <= now)
                    .expect("issue checked for a free divider");
                *unit = now + u64::from(latency);
                now + u64::from(latency)
            }
            _ => now + u64::from(latency),
        };

        let (seq, slave_info, fwd, is_cond, pc, taken, mispredicted) = {
            let d = &mut self.window[wi];
            d.master_issued = Some(now);
            d.master_done = Some(done);
            (
                d.op.seq,
                d.dist.slave_receives.then(|| d.dist.slave.expect("slave")),
                d.forwards(),
                d.op.is_conditional_branch(),
                d.op.pc,
                d.op.branch.map(|b| b.taken).unwrap_or(false),
                d.mispredicted,
            )
        };

        // The completion time is now known: wake consumers in this
        // cluster, schedule the slave copy (receive-only slaves may
        // issue from (issue+1).max(done-1); scenario-five slaves are
        // woken at completion), and record the completion event.
        let head = std::mem::replace(&mut self.window[wi].w_done, NIL);
        self.notify_waiters(head, done, DeliverySource::Completion, seq);
        if slave_info.is_some() {
            if fwd {
                self.wake_events.schedule(done, seq, 0);
            } else {
                self.deliver(
                    seq,
                    ACT_SLAVE,
                    (now + 1).max(done.saturating_sub(1)),
                    DeliverySource::Completion,
                    Some(seq),
                );
            }
        }
        self.completions.push(Reverse((done, seq, u64::from(DONE_EVT))));

        // Free the master's dispatch-queue entry.
        {
            let d = &mut self.window[wi];
            if !d.dq_master_freed {
                d.dq_master_freed = true;
                self.dq_free[cluster.index()] += 1;
            }
        }

        // The master obtains forwarded operands at operand read; the
        // operand-buffer entry frees for use the next cycle.
        if fwd {
            let d = &mut self.window[wi];
            if d.otb_held {
                d.otb_held = false;
                self.buffer_frees.schedule(now + 1, (cluster.index() as u64) << 1 | u64::from(OTB), 0);
                if P::ENABLED {
                    self.probe.forwarded(
                        now + 1,
                        seq,
                        TransferKind::Operand,
                        TransferPhase::Release,
                        cluster,
                    );
                }
            }
        }

        // Allocate the result-transfer-buffer entry in the slave's
        // cluster for forwarded results.
        if let Some(slave) = slave_info {
            self.rtb_free[slave.index()] -= 1;
            self.window[wi].rtb_held = true;
            self.stats.results_forwarded += 1;
            self.log_at(done, seq, Some(slave), EventKind::ResultWritten);
            if P::ENABLED {
                self.probe.forwarded(now, seq, TransferKind::Result, TransferPhase::Alloc, slave);
            }
        }

        // Branch resolution.
        if is_cond {
            self.pending_bpred.schedule(done, seq, pack_branch(pc, taken, mispredicted));
            if mispredicted {
                self.log_at(done, seq, Some(cluster), EventKind::Mispredicted);
            }
        }

        self.log(seq, Some(cluster), EventKind::MasterIssued);
        self.log_at(done, seq, Some(cluster), EventKind::ExecDone);
        if P::ENABLED {
            self.probe.issued(now, seq, cluster, CopyKind::Master, done);
            self.probe.completed(done, seq, cluster);
            if load_miss {
                self.probe.load_missed(seq);
            }
        }
        // The master writes a register copy only when its own cluster
        // holds the destination (always, except scenario three).
        let master_writes = {
            let d = &self.window[wi];
            d.op.dest.is_some_and(|dest| self.assign.clusters_of(dest).contains(cluster))
        };
        if master_writes {
            self.log_at(done, seq, Some(cluster), EventKind::RegWritten);
        }
    }

    fn issue_slave_forward(&mut self, wi: usize, cluster: ClusterId) {
        let now = self.now;
        let (seq, master, receives, n_forwarded) = {
            let d = &mut self.window[wi];
            d.slave_issued = Some(now);
            (
                d.op.seq,
                d.dist.master,
                d.dist.slave_receives,
                d.dist.forwarded_src.iter().filter(|&&f| f).count(),
            )
        };
        // Allocate the operand-buffer entry in the master's cluster.
        self.otb_free[master.index()] -= 1;
        self.window[wi].otb_held = true;
        self.stats.operands_forwarded += 1;
        if P::ENABLED {
            // The forwarded operand is readable from `now + 1`.
            self.probe.issued(now, seq, cluster, CopyKind::Slave, now + 1);
            self.probe.forwarded(now, seq, TransferKind::Operand, TransferPhase::Alloc, master);
        }

        // The inter-copy dependence lifts: the master reads the
        // forwarded operand(s) from the next cycle on.
        for _ in 0..n_forwarded {
            self.deliver(seq, ACT_MASTER, now + 1, DeliverySource::OperandForward, None);
        }

        // Non-receiving slaves are finished once the operand is written;
        // scenario-five slaves stay suspended in the queue.
        if !receives {
            let d = &mut self.window[wi];
            if !d.dq_slave_freed {
                d.dq_slave_freed = true;
                self.dq_free[cluster.index()] += 1;
            }
        } else {
            self.log_at(now + 1, seq, Some(cluster), EventKind::SlaveSuspended);
        }
        self.log(seq, Some(cluster), EventKind::SlaveIssued);
        self.log_at(now + 1, seq, Some(master), EventKind::OperandWritten);
    }

    fn issue_slave_receive(&mut self, wi: usize, cluster: ClusterId) {
        let now = self.now;
        let seq = {
            let d = &mut self.window[wi];
            d.slave_issued = Some(now);
            d.slave_write = Some(now + 1);
            if d.rtb_held {
                d.rtb_held = false;
            }
            d.op.seq
        };
        // The write time is now known: wake consumers in this cluster
        // and record the completion event.
        let head = std::mem::replace(&mut self.window[wi].w_write, NIL);
        self.notify_waiters(head, now + 1, DeliverySource::SlaveWrite, seq);
        self.completions.push(Reverse((now + 1, seq, u64::from(WRITE_EVT))));
        // The slave reads the entry, then writes its register.
        self.buffer_frees.schedule(now + 1, (cluster.index() as u64) << 1 | u64::from(RTB), 0);
        if P::ENABLED {
            self.probe.issued(now, seq, cluster, CopyKind::Slave, now + 1);
            self.probe.forwarded(now + 1, seq, TransferKind::Result, TransferPhase::Release, cluster);
        }
        {
            let d = &mut self.window[wi];
            if !d.dq_slave_freed {
                d.dq_slave_freed = true;
                self.dq_free[cluster.index()] += 1;
            }
        }
        self.log(seq, Some(cluster), EventKind::SlaveIssued);
        self.log_at(now + 1, seq, Some(cluster), EventKind::RegWritten);
    }

    // -- dispatch (fetch + rename + queue insert) ----------------------------

    fn dispatch(&mut self) -> u32 {
        let now = self.now;
        if self.cursor >= self.trace.len() {
            // Post-trace drain: nothing left to fetch, not a stall.
            self.stats.drain_cycles += 1;
            return 0;
        }
        if self.fetch_blocked_by.is_some() {
            self.stats.stall_branch += 1;
            if P::ENABLED {
                self.probe.stalled(now, StallCause::BranchWait);
            }
            return 0;
        }
        if now < self.fetch_resume_at {
            let cause = match self.fetch_stall {
                FetchStall::Icache => {
                    self.stats.stall_icache += 1;
                    StallCause::Icache
                }
                FetchStall::Replay => {
                    self.stats.stall_replay += 1;
                    StallCause::Replay
                }
                FetchStall::Branch => {
                    self.stats.stall_branch += 1;
                    StallCause::BranchRedirect
                }
                FetchStall::Reassign => {
                    self.stats.stall_reassign += 1;
                    StallCause::Reassign
                }
            };
            if P::ENABLED {
                self.probe.stalled(now, cause);
            }
            return 0;
        }

        let mut dispatched = 0;
        let mut last_line: Option<u64> = None;
        let line_bytes = self.cfg.icache.line_bytes as u64;

        while dispatched < self.cfg.fetch_width && self.cursor < self.trace.len() {
            // A valid memo replays the front-end work recorded the
            // cycle this cursor first stalled; see [`DispatchMemo`].
            let memo = self.dispatch_memo.filter(|m| m.cursor == self.cursor);
            let op = match memo {
                Some(m) => m.op,
                None => self.trace.get(self.cursor),
            };

            // Dynamic register reassignment (Section 6): the first
            // dispatch of a trigger PC drains the pipeline, pays the
            // state-movement penalty, and switches the assignment.
            if self.reassign_draining
                || self.pending_reassign.first().is_some_and(|r| r.trigger_pc == op.pc)
            {
                self.reassign_draining = true;
                if !self.window.is_empty() {
                    if dispatched == 0 {
                        self.stats.stall_reassign += 1;
                        if P::ENABLED {
                            self.probe.stalled(now, StallCause::Reassign);
                        }
                    }
                    return dispatched;
                }
                let point = self.pending_reassign.remove(0);
                self.assign = point.assignment;
                // Distribution votes depend on the assignment.
                self.dispatch_memo = None;
                let (int_free, fp_free) = free_lists_for(self.cfg, &self.assign);
                self.int_free = int_free;
                self.fp_free = fp_free;
                self.reg_caps = (int_free, fp_free);
                self.reassign_draining = false;
                self.stats.reassignments += 1;
                // The switch consumes this cycle; the remaining
                // `reassignment_penalty - 1` wait cycles are charged one
                // at a time by the `fetch_resume_at` check above (the
                // window is empty here, so `dispatched == 0`).
                self.stats.stall_reassign += 1;
                if P::ENABLED {
                    self.probe.stalled(now, StallCause::Reassign);
                }
                self.fetch_resume_at = now + self.cfg.reassignment_penalty;
                self.fetch_stall = FetchStall::Reassign;
                // Rename state restarts under the new assignment (the
                // window is empty, so every mapping is architectural).
                for table in &mut self.producers {
                    table.iter_mut().for_each(|e| *e = None);
                }
                return dispatched;
            }

            // Instruction cache (one access per line per group). The
            // memo guarantees the line hit when it was recorded and
            // nothing has touched the instruction cache since (fetch
            // is its only client and the cursor has not moved), so a
            // memoized retry records the repeat hit without the lookup.
            let line = op.pc / line_bytes;
            if last_line != Some(line) {
                if memo.is_some() {
                    self.icache.record_repeat_hits(op.pc, 1);
                } else {
                    match self.icache.access(op.pc, now, false) {
                        Access::Hit => {}
                        Access::Miss { ready_at, .. } => {
                            self.fetch_resume_at = ready_at;
                            self.fetch_stall = FetchStall::Icache;
                            if dispatched == 0 {
                                self.stats.stall_icache += 1;
                                if P::ENABLED {
                                    self.probe.stalled(now, StallCause::Icache);
                                }
                            }
                            return dispatched;
                        }
                    }
                }
                last_line = Some(line);
            }
            if P::ENABLED {
                self.probe.fetched(now, op.seq);
            }

            // Distribution and resource checks.
            let m = memo.unwrap_or_else(|| {
                let dist = distribute(&op, &self.assign, &self.balance);
                let phys = dist.phys_needed(&op, &self.assign);
                let mut dq_needed = [0u32; 2];
                dq_needed[dist.master.index()] += 1;
                if let Some(s) = dist.slave {
                    dq_needed[s.index()] += 1;
                }
                let mut int_needed = [0i64; 2];
                let mut fp_needed = [0i64; 2];
                for (c, bank) in phys.iter() {
                    match bank {
                        RegBank::Int => int_needed[c.index()] += 1,
                        RegBank::Fp => fp_needed[c.index()] += 1,
                    }
                }
                DispatchMemo {
                    cursor: self.cursor,
                    op,
                    dist,
                    phys,
                    dq_needed,
                    int_needed,
                    fp_needed,
                }
            });
            let (dist, phys) = (m.dist, m.phys);
            let dq_ok = (0..2).all(|c| self.dq_free[c] >= m.dq_needed[c]);
            if !dq_ok {
                self.dispatch_memo = Some(m);
                if dispatched == 0 {
                    self.stats.stall_dq += 1;
                    if P::ENABLED {
                        self.probe.stalled(now, StallCause::DispatchQueue);
                    }
                }
                return dispatched;
            }
            let regs_ok = (0..2)
                .all(|c| self.int_free[c] >= m.int_needed[c] && self.fp_free[c] >= m.fp_needed[c]);
            if !regs_ok {
                self.dispatch_memo = Some(m);
                if dispatched == 0 {
                    self.stats.stall_regs += 1;
                    if P::ENABLED {
                        self.probe.stalled(now, StallCause::Registers);
                    }
                }
                return dispatched;
            }
            let (dq_needed, int_needed, fp_needed) = (m.dq_needed, m.int_needed, m.fp_needed);
            self.dispatch_memo = None;

            // Commit the dispatch.
            for c in 0..2 {
                self.dq_free[c] -= dq_needed[c];
                self.int_free[c] -= int_needed[c];
                self.fp_free[c] -= fp_needed[c];
            }
            self.balance[dist.master.index()] += 1;
            self.stats.per_cluster_dispatched[dist.master.index()] += 1;
            if let Some(s) = dist.slave {
                self.balance[s.index()] += 1;
                self.stats.per_cluster_dispatched[s.index()] += 1;
                self.stats.dual_distributed += 1;
            } else {
                self.stats.single_distributed += 1;
            }
            self.stats.scenario[usize::from(dist.scenario - 1)] += 1;

            // Resolve source dependences against the rename state.
            let mut src_dep = [None, None];
            let mut src_read_cluster = [dist.master; 2];
            for i in 0..2 {
                let Some(reg) = op.srcs[i] else { continue };
                let rc = if dist.forwarded_src[i] {
                    dist.slave.expect("forwarded operand implies a slave")
                } else {
                    dist.master
                };
                src_read_cluster[i] = rc;
                src_dep[i] = self.producers[rc.index()][reg.dense_index()];
                if P::ENABLED && dist.forwarded_src[i] {
                    if let Some(p) = src_dep[i] {
                        self.probe.forwarded_operand_source(op.seq, p);
                    }
                }
            }
            // Rename the destination in every cluster holding it.
            if let Some(dest) = op.dest {
                for c in self.assign.clusters_of(dest).iter() {
                    if c.index() < usize::from(self.cfg.clusters) {
                        self.producers[c.index()][dest.dense_index()] = Some(op.seq);
                    }
                }
            }

            // Ready-queue bookkeeping: resolve each copy's operand
            // times now, or register on the producer's wakeup list so
            // the copy enters the ready set the moment its last operand
            // time becomes known.
            let seq = op.seq;
            let mut m_wait = WaitState::default();
            let mut s_wait = WaitState::default();
            for i in 0..2 {
                if op.srcs[i].is_none() {
                    continue;
                }
                if dist.forwarded_src[i] {
                    // Inter-copy dependence: lifted when the slave copy
                    // forwards the operand (Section 2.1 scenario two).
                    m_wait.unknown += 1;
                } else {
                    match self.avail_for(src_dep[i], src_read_cluster[i]) {
                        Avail::Known(t) => m_wait.ready_at = m_wait.ready_at.max(t),
                        Avail::WaitDone(pi) => {
                            m_wait.unknown += 1;
                            let head = self.window[pi].w_done;
                            self.window[pi].w_done = self.waiters.push(head, seq, ACT_MASTER);
                        }
                        Avail::WaitWrite(pi) => {
                            m_wait.unknown += 1;
                            let head = self.window[pi].w_write;
                            self.window[pi].w_write = self.waiters.push(head, seq, ACT_MASTER);
                        }
                    }
                }
            }
            if let Some(s) = dist.slave {
                if dist.forwarded_src.iter().any(|&f| f) {
                    for i in 0..2 {
                        if !dist.forwarded_src[i] {
                            continue;
                        }
                        match self.avail_for(src_dep[i], src_read_cluster[i]) {
                            Avail::Known(t) => s_wait.ready_at = s_wait.ready_at.max(t),
                            Avail::WaitDone(pi) => {
                                s_wait.unknown += 1;
                                let head = self.window[pi].w_done;
                                self.window[pi].w_done = self.waiters.push(head, seq, ACT_SLAVE);
                            }
                            Avail::WaitWrite(pi) => {
                                s_wait.unknown += 1;
                                let head = self.window[pi].w_write;
                                self.window[pi].w_write = self.waiters.push(head, seq, ACT_SLAVE);
                            }
                        }
                    }
                } else {
                    // Receive-only slave: schedulable once its master
                    // issues (scenarios three and four).
                    s_wait.unknown = 1;
                }
                if s_wait.unknown == 0 {
                    self.future_ready.schedule(
                        s_wait.ready_at,
                        seq << 1 | u64::from(ACT_SLAVE),
                        s.index() as u64,
                    );
                }
                self.waiting_min[s.index()].push(Reverse((seq, ACT_SLAVE)));
            }
            if m_wait.unknown == 0 {
                self.future_ready.schedule(
                    m_wait.ready_at,
                    seq << 1 | u64::from(ACT_MASTER),
                    dist.master.index() as u64,
                );
            }
            self.waiting_min[dist.master.index()].push(Reverse((seq, ACT_MASTER)));

            // Branch prediction at queue-insert time (Section 4.2,
            // footnote 2).
            let mut mispredicted = false;
            if op.is_conditional_branch() {
                self.stats.branches += 1;
                let predicted = self.predictor.predict(op.pc);
                let actual = op.branch.expect("conditional has branch info").taken;
                if predicted != actual {
                    mispredicted = true;
                    self.stats.mispredicts += 1;
                    self.fetch_blocked_by = Some(op.seq);
                }
            }

            let master = dist.master;
            let slave = dist.slave;
            let taken = op.branch.is_some_and(|b| b.taken);
            let sched_inserted = op.sched_inserted;
            let slave_receives = dist.slave_receives;
            let ready_floor = m_wait.ready_at;
            let ready_known = m_wait.unknown == 0;
            self.window.push_back(DynInstr {
                op,
                dist,
                phys,
                m_wait,
                s_wait,
                w_done: NIL,
                w_write: NIL,
                master_issued: None,
                master_done: None,
                slave_issued: None,
                slave_write: None,
                woke: false,
                mispredicted,
                dq_master_freed: false,
                dq_slave_freed: false,
                otb_held: false,
                rtb_held: false,
            });
            self.log(seq, Some(master), EventKind::Distributed);
            if let Some(s) = slave {
                self.log(seq, Some(s), EventKind::Distributed);
            }
            if P::ENABLED {
                self.probe.dispatched(now, seq, master, slave);
                self.probe.op_dispatch_meta(
                    seq,
                    sched_inserted,
                    slave_receives,
                    ready_floor,
                    ready_known,
                );
            }

            self.cursor += 1;
            dispatched += 1;

            if mispredicted {
                break; // wrong-path fetch until the branch resolves
            }
            if taken && self.cfg.fetch_stops_at_taken {
                break; // a taken branch ends the fetch group
            }
        }
        dispatched
    }

    // -- deadlock handling -----------------------------------------------------

    fn check_progress(&mut self, work_done: u32) -> Result<(), SimError> {
        // An empty window only counts as progress when the run is over:
        // with trace left to dispatch, a drained machine must still show
        // future work (fetch resuming, a pending branch resolution, ...)
        // or it is wedged — e.g. fetch blocked on a branch whose
        // resolution was lost — and must be reported, not spun to the
        // cycle limit.
        if work_done > 0 || (self.window.is_empty() && self.cursor >= self.trace.len()) {
            self.no_progress_cycles = 0;
            return Ok(());
        }
        let now = self.now;
        let future_work = self.fetch_resume_at > now
            || !self.pending_bpred.is_empty()
            || !self.buffer_frees.is_empty()
            || self.has_future_completion(now);
        if future_work {
            self.no_progress_cycles = 0;
            return Ok(());
        }
        self.no_progress_cycles += 1;
        if self.no_progress_cycles < 2 {
            return Ok(());
        }
        if self.blocked_on_buffer {
            // Transfer-buffer deadlock (Section 2.1): replay from the
            // youngest instruction holding a buffer entry. If the same
            // deadlock recurs before anything retires, escalate to a
            // full squash (everything but the oldest instruction), which
            // guarantees progress: the oldest instruction's dependences
            // are all retired and every buffer entry is freed.
            let escalate = self.last_replay_base == Some(self.base) && self.window.len() > 1;
            let victim = if escalate {
                Some(self.base + 1)
            } else {
                self.window.iter().rev().find(|d| d.otb_held || d.rtb_held).map(|d| d.op.seq)
            };
            if let Some(seq) = victim {
                if escalate {
                    self.stats.replay_escalations += 1;
                }
                self.last_replay_base = Some(self.base);
                self.replay_from(seq);
                self.no_progress_cycles = 0;
                self.replays_since_retire += 1;
                // Replay forward progress: the escalation ladder
                // guarantees at most two replays (one ordinary, one
                // escalated) before the oldest instruction retires.
                if self.check != CheckLevel::Off && self.replays_since_retire > 2 {
                    return Err(SimError::Invariant {
                        cycle: now,
                        rule: "replay-progress",
                        detail: format!(
                            "{} replay exceptions without an intervening retirement \
                             (window base #{})",
                            self.replays_since_retire, self.base
                        ),
                        snapshot: self.window_snapshot(),
                    });
                }
                return Ok(());
            }
        }
        if self.no_progress_cycles > self.cfg.wedge_threshold {
            return Err(SimError::Wedged { cycle: now, oldest_seq: self.base });
        }
        Ok(())
    }

    /// Whether some in-flight instruction completes (master done or
    /// slave register write) strictly after `now`. Exact: every such
    /// time pushes a completion event when scheduled; events from
    /// squashed incarnations are discarded against the live window.
    fn has_future_completion(&mut self, now: u64) -> bool {
        self.next_live_completion(now).is_some()
    }

    /// The earliest cycle strictly after `now` at which a live,
    /// in-flight instruction completes, discarding already-fired and
    /// stale (squashed-incarnation) events along the way.
    fn next_live_completion(&mut self, now: u64) -> Option<u64> {
        // Walk events in firing order, dropping ones at or before `now`
        // (they fired, or never will) and stale ones, until one is live.
        loop {
            let &Reverse((cycle, seq, evt)) = self.completions.peek()?;
            if cycle <= now {
                self.completions.pop();
                continue;
            }
            let live = match self.win_index(seq) {
                None => false,
                Some(wi) => {
                    let d = &self.window[wi];
                    if evt == u64::from(DONE_EVT) {
                        d.master_done == Some(cycle)
                    } else {
                        d.slave_write == Some(cycle)
                    }
                }
            };
            if live {
                return Some(cycle);
            }
            self.completions.pop();
        }
    }

    // -- invariant checking --------------------------------------------------

    /// A [`render_window`] view of the live window (capped), for
    /// attaching to violation reports.
    fn window_snapshot(&self) -> String {
        use std::fmt::Write as _;
        const MAX_ROWS: usize = 48;
        let rows: Vec<WindowRow> = self
            .window
            .iter()
            .take(MAX_ROWS)
            .map(|d| WindowRow {
                seq: d.op.seq,
                scenario: d.dist.scenario,
                master: d.dist.master.index() as u8,
                slave: d.dist.slave.map(|s| s.index() as u8),
                master_issued: d.master_issued,
                master_done: d.master_done,
                slave_issued: d.slave_issued,
                slave_write: d.slave_write,
                otb_held: d.otb_held,
                rtb_held: d.rtb_held,
            })
            .collect();
        let mut snapshot = render_window(self.now, self.base, &rows);
        if self.window.len() > MAX_ROWS {
            let _ = writeln!(snapshot, "  ... {} more", self.window.len() - MAX_ROWS);
        }
        snapshot
    }

    /// Runs every invariant check against the end-of-cycle state,
    /// converting the first violation into [`SimError::Invariant`].
    fn validate_invariants(&mut self, issued_per: &[u32; 2]) -> Result<(), SimError> {
        if let Err(v) = self.find_violation(issued_per) {
            return Err(SimError::Invariant {
                cycle: self.now,
                rule: v.rule,
                detail: v.detail,
                snapshot: self.window_snapshot(),
            });
        }
        Ok(())
    }

    fn find_violation(&mut self, issued_per: &[u32; 2]) -> Result<(), check::Violation> {
        self.check_window_order()?;
        self.check_resource_accounting(issued_per)?;
        self.check_waiter_liveness()?;
        self.check_completion_liveness()?;
        Ok(())
    }

    /// In-order retirement: the window is contiguous in sequence
    /// numbers starting at the retirement base.
    fn check_window_order(&self) -> Result<(), check::Violation> {
        for (i, d) in self.window.iter().enumerate() {
            let expect = self.base + i as u64;
            if d.op.seq != expect {
                return Err(check::Violation::new(
                    "window-order",
                    format!("window slot {i} holds #{}, expected #{expect}", d.op.seq),
                ));
            }
        }
        Ok(())
    }

    /// Re-derives every cluster's resource holdings from the window and
    /// checks free + held (+ pending frees) against the configured
    /// capacities, plus the cycle's issue counts against the per-cluster
    /// width.
    fn check_resource_accounting(&self, issued_per: &[u32; 2]) -> Result<(), check::Violation> {
        let n = usize::from(self.cfg.clusters);
        let mut t = [check::ClusterTally::default(); 2];
        let (int_cap, fp_cap) = self.reg_caps;
        for c in 0..n {
            t[c].dq_free = u64::from(self.dq_free[c]);
            t[c].dq_capacity = u64::from(self.cfg.dq_entries);
            t[c].otb_free = u64::from(self.otb_free[c]);
            t[c].otb_capacity = u64::from(self.cfg.operand_buffer);
            t[c].rtb_free = u64::from(self.rtb_free[c]);
            t[c].rtb_capacity = u64::from(self.cfg.result_buffer);
            t[c].int_free = self.int_free[c];
            t[c].int_capacity = int_cap[c];
            t[c].fp_free = self.fp_free[c];
            t[c].fp_capacity = fp_cap[c];
            t[c].issued = issued_per[c];
            t[c].issue_limit = self.cfg.issue_rules.total;
        }
        for d in &self.window {
            let m = d.dist.master.index();
            if !d.dq_master_freed {
                t[m].dq_held += 1;
            }
            if d.otb_held {
                t[m].otb_held += 1;
            }
            if let Some(s) = d.dist.slave {
                if !d.dq_slave_freed {
                    t[s.index()].dq_held += 1;
                }
                if d.rtb_held {
                    t[s.index()].rtb_held += 1;
                }
            }
            for (c, bank) in d.phys.iter() {
                match bank {
                    RegBank::Int => t[c.index()].int_held += 1,
                    RegBank::Fp => t[c.index()].fp_held += 1,
                }
            }
        }
        // Scheduled frees all lie strictly in the future here (due ones
        // were drained at cycle start), so they are exactly the entries
        // that are neither free nor held.
        for e in self.buffer_frees.iter() {
            let c = (e.key >> 1) as usize;
            if e.key & 1 == u64::from(OTB) {
                t[c].otb_pending += 1;
            } else {
                t[c].rtb_pending += 1;
            }
        }
        for (c, tally) in t.iter().enumerate().take(n) {
            check::verify_cluster(c, tally)?;
        }
        Ok(())
    }

    /// Every wakeup-list registration names a live, younger consumer
    /// that still has unknown operands, and every arena node is either
    /// reachable from a window list or on the free list (no leaks, no
    /// cycles).
    fn check_waiter_liveness(&mut self) -> Result<(), check::Violation> {
        let nodes = self.waiters.nodes.len();
        let mut registrations = std::mem::take(&mut self.scratch_regs);
        registrations.clear();
        registrations.resize(self.window.len(), [0; 2]);
        let result = self.waiter_liveness_with(&mut registrations);
        self.scratch_regs = registrations;
        let reachable = result?;
        let free = self.waiters.free_len as usize;
        if reachable + free != nodes {
            return Err(check::Violation::new(
                "waiter-liveness",
                format!("{reachable} reachable + {free} free != {nodes} waiter nodes (leak)"),
            ));
        }
        Ok(())
    }

    /// The traversal half of [`Self::check_waiter_liveness`], split out
    /// so the scratch tally buffer can be restored on either exit path.
    /// Returns the number of reachable arena nodes.
    fn waiter_liveness_with(
        &self,
        registrations: &mut [[u32; 2]],
    ) -> Result<usize, check::Violation> {
        let nodes = self.waiters.nodes.len();
        let mut reachable = 0usize;
        for d in &self.window {
            for (head, list) in [(d.w_done, "done"), (d.w_write, "write")] {
                let mut idx = head;
                while idx != NIL {
                    reachable += 1;
                    if reachable > nodes {
                        return Err(check::Violation::new(
                            "waiter-liveness",
                            format!("cycle in the {list} wakeup list of #{}", d.op.seq),
                        ));
                    }
                    let node = self.waiters.nodes[idx as usize];
                    let Some(ci) = self.win_index(node.consumer) else {
                        return Err(check::Violation::new(
                            "waiter-liveness",
                            format!(
                                "the {list} list of #{} names consumer #{}, which is \
                                 retired or squashed",
                                d.op.seq, node.consumer
                            ),
                        ));
                    };
                    if node.consumer <= d.op.seq {
                        return Err(check::Violation::new(
                            "waiter-liveness",
                            format!(
                                "consumer #{} is not younger than its producer #{}",
                                node.consumer, d.op.seq
                            ),
                        ));
                    }
                    registrations[ci][usize::from(node.action)] += 1;
                    idx = node.next;
                }
            }
        }
        for (ci, regs) in registrations.iter().enumerate() {
            let d = &self.window[ci];
            for (action, &count) in regs.iter().enumerate() {
                let st = if action == usize::from(ACT_MASTER) { &d.m_wait } else { &d.s_wait };
                if count > u32::from(st.unknown) {
                    return Err(check::Violation::new(
                        "waiter-liveness",
                        format!(
                            "#{} holds {count} wakeup registrations for {} unknown \
                             operands",
                            d.op.seq, st.unknown
                        ),
                    ));
                }
            }
        }
        Ok(reachable)
    }

    /// Every future completion time recorded in the window has a
    /// matching event in the completions heap — otherwise the progress
    /// check could miss pending work and misdiagnose a deadlock.
    fn check_completion_liveness(&mut self) -> Result<(), check::Violation> {
        let mut scheduled = std::mem::take(&mut self.scratch_sched);
        scheduled.clear();
        scheduled.resize(self.window.len(), [false; 2]);
        let result = self.completion_liveness_with(&mut scheduled);
        self.scratch_sched = scheduled;
        result
    }

    /// The marking half of [`Self::check_completion_liveness`], split
    /// out so the scratch mark buffer can be restored on either exit
    /// path.
    fn completion_liveness_with(
        &self,
        scheduled: &mut [[bool; 2]],
    ) -> Result<(), check::Violation> {
        // One pass over the queue marks which window entries have a
        // matching event; stale events for squashed or retired
        // instructions (lazy deletion) simply mark nothing.
        for &Reverse((cycle, seq, evt)) in self.completions.iter() {
            let Some(wi) = self.win_index(seq) else { continue };
            let d = &self.window[wi];
            let (expect, slot) = if evt == u64::from(DONE_EVT) {
                (d.master_done, 0)
            } else {
                (d.slave_write, 1)
            };
            if expect == Some(cycle) {
                scheduled[wi][slot] = true;
            }
        }
        let now = self.now;
        for (wi, d) in self.window.iter().enumerate() {
            if let Some(done) = d.master_done {
                if done > now && !scheduled[wi][0] {
                    return Err(check::Violation::new(
                        "completion-liveness",
                        format!(
                            "#{} completes at cycle {done} with no scheduled completion \
                             event",
                            d.op.seq
                        ),
                    ));
                }
            }
            if let Some(write) = d.slave_write {
                if write > now && !scheduled[wi][1] {
                    return Err(check::Violation::new(
                        "completion-liveness",
                        format!(
                            "#{} writes its slave register copy at cycle {write} with no \
                             scheduled completion event",
                            d.op.seq
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Squashes instruction `from_seq` and everything younger, then
    /// restarts dispatch from it after the replay penalty.
    fn replay_from(&mut self, from_seq: u64) {
        let now = self.now;
        self.stats.replays += 1;
        let keep = (from_seq - self.base) as usize;
        let mut squashed = std::mem::take(&mut self.scratch_squash);
        squashed.clear();
        squashed.extend(self.window.drain(keep..));
        for d in &squashed {
            self.stats.replay_squashed += 1;
            for (c, bank) in d.phys.iter() {
                match bank {
                    RegBank::Int => self.int_free[c.index()] += 1,
                    RegBank::Fp => self.fp_free[c.index()] += 1,
                }
            }
            if !d.dq_master_freed {
                self.dq_free[d.dist.master.index()] += 1;
            }
            if let Some(s) = d.dist.slave {
                if !d.dq_slave_freed {
                    self.dq_free[s.index()] += 1;
                }
                if d.rtb_held {
                    self.rtb_free[s.index()] += 1;
                }
            }
            if d.otb_held {
                self.otb_free[d.dist.master.index()] += 1;
            }
            self.waiters.release_list(d.w_done);
            self.waiters.release_list(d.w_write);
            self.log(d.op.seq, None, EventKind::ReplaySquashed);
        }
        let squash_count = squashed.len() as u64;
        squashed.clear();
        self.scratch_squash = squashed;
        if P::ENABLED {
            self.probe.replayed(now, from_seq, squash_count);
        }
        // Squashed copies leave the ready sets; registrations *by*
        // squashed consumers on surviving producers are dropped so a
        // re-dispatched incarnation cannot see a double delivery. The
        // future-ready/wake/completion heaps and the waiting heaps
        // validate lazily against the live window instead.
        for c in 0..2 {
            let keep = self.ready[c].partition_point(|e| e.seq < from_seq);
            self.ready[c].truncate(keep);
        }
        for wi in 0..self.window.len() {
            let head = self.window[wi].w_done;
            self.window[wi].w_done = self.waiters.purge_squashed(head, from_seq);
            let head = self.window[wi].w_write;
            self.window[wi].w_write = self.waiters.purge_squashed(head, from_seq);
        }
        // Drop pending predictor updates for squashed branches.
        self.pending_bpred.retain(|e| e.key < from_seq);
        // Rebuild the rename state from the surviving window.
        for table in &mut self.producers {
            table.iter_mut().for_each(|e| *e = None);
        }
        let n = usize::from(self.cfg.clusters);
        for wi in 0..self.window.len() {
            let (seq, dest) = {
                let d = &self.window[wi];
                (d.op.seq, d.op.dest)
            };
            if let Some(dest) = dest {
                for c in self.assign.clusters_of(dest).iter() {
                    if c.index() < n {
                        self.producers[c.index()][dest.dense_index()] = Some(seq);
                    }
                }
            }
        }
        // An unresolved mispredicted branch that was squashed no longer
        // blocks fetch.
        if self.fetch_blocked_by.is_some_and(|b| b >= from_seq) {
            self.fetch_blocked_by = None;
        }
        self.cursor = usize::try_from(from_seq).expect("trace indices fit usize");
        // The rewind restored balance and free lists; any memoized
        // front-end work is stale.
        self.dispatch_memo = None;
        self.fetch_resume_at = now + self.cfg.replay_penalty;
        self.fetch_stall = FetchStall::Replay;
    }
}

/// Physical-register free-list sizes for an empty pipeline under
/// `assign`: capacity minus the committed architectural mappings each
/// cluster must hold.
fn free_lists_for(
    cfg: &ProcessorConfig,
    assign: &mcl_isa::assign::RegisterAssignment,
) -> ([i64; 2], [i64; 2]) {
    let n = usize::from(cfg.clusters);
    let mut int_committed = [0i64; 2];
    let mut fp_committed = [0i64; 2];
    for reg in ArchReg::all() {
        if reg.is_zero() {
            continue;
        }
        for c in assign.clusters_of(reg).iter() {
            if c.index() >= n {
                continue;
            }
            match reg.bank() {
                RegBank::Int => int_committed[c.index()] += 1,
                RegBank::Fp => fp_committed[c.index()] += 1,
            }
        }
    }
    let mut int_free = [0i64; 2];
    let mut fp_free = [0i64; 2];
    for c in 0..n {
        int_free[c] = i64::from(cfg.int_regs) - int_committed[c];
        fp_free[c] = i64::from(cfg.fp_regs) - fp_committed[c];
        assert!(int_free[c] > 0 && fp_free[c] > 0, "physical registers too few");
    }
    (int_free, fp_free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::ProgramBuilder;

    fn run(cfg: ProcessorConfig, program: &Program<ArchReg>) -> SimResult {
        Processor::new(cfg).run_program(program).expect("simulates")
    }

    /// A chain of dependent adds on even registers (single cluster use).
    fn chain_program(len: usize) -> Program<ArchReg> {
        let mut b = ProgramBuilder::<ArchReg>::new("chain");
        let r = ArchReg::int(2);
        b.lda(r, 0);
        for _ in 0..len {
            b.addq_imm(r, r, 1);
        }
        b.finish().unwrap()
    }

    #[test]
    fn retires_every_instruction() {
        let p = chain_program(50);
        let res = run(ProcessorConfig::single_cluster_8way(), &p);
        assert_eq!(res.stats.retired, 51);
        assert!(res.stats.cycles >= 51, "a dependent chain runs at one IPC at best");
    }

    #[test]
    fn dependent_chain_runs_at_one_ipc_steady_state() {
        // A loop (warm icache, predictable branch) whose body is a
        // 16-deep dependent add chain: the chain limits throughput to
        // about one add per cycle.
        let mut b = ProgramBuilder::<ArchReg>::new("chain-loop");
        let r = ArchReg::int(2);
        let i = ArchReg::int(4);
        let body = b.new_block("body");
        b.lda(r, 0);
        b.lda(i, 200);
        b.switch_to(body);
        for _ in 0..16 {
            b.addq_imm(r, r, 1);
        }
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let res = run(ProcessorConfig::single_cluster_8way(), &p);
        let cycles = res.stats.cycles;
        // 200 iterations x 16-cycle chain = 3200 cycles of pure chain.
        assert!((3200..4200).contains(&cycles), "cycles = {cycles}");
    }

    #[test]
    fn independent_instructions_issue_in_parallel() {
        // 8 independent chains inside a loop: issue-width bound, not
        // dependence bound.
        let mut b = ProgramBuilder::<ArchReg>::new("wide-loop");
        let i = ArchReg::int(20);
        let body = b.new_block("body");
        for c in 0..8u8 {
            b.lda(ArchReg::int(c * 2), i64::from(c));
        }
        b.lda(i, 100);
        b.switch_to(body);
        for _ in 0..5 {
            for c in 0..8u8 {
                let r = ArchReg::int(c * 2);
                b.addq_imm(r, r, 1);
            }
        }
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let res = run(ProcessorConfig::single_cluster_8way(), &p);
        assert!(res.stats.ipc() > 4.0, "ipc = {}", res.stats.ipc());
    }

    #[test]
    fn single_cluster_never_dual_distributes() {
        let p = chain_program(20);
        let res = run(ProcessorConfig::single_cluster_8way(), &p);
        assert_eq!(res.stats.dual_distributed, 0);
        assert_eq!(res.stats.scenario[1..].iter().sum::<u64>(), 0);
    }

    #[test]
    fn cross_cluster_chain_dual_distributes() {
        // Alternating even/odd destinations force inter-cluster traffic.
        let mut b = ProgramBuilder::<ArchReg>::new("pingpong");
        let e = ArchReg::int(2);
        let o = ArchReg::int(3);
        b.lda(e, 0);
        for _ in 0..20 {
            b.addq_imm(o, e, 1); // reads C0, writes C1 -> dual
            b.addq_imm(e, o, 1); // reads C1, writes C0 -> dual
        }
        let p = b.finish().unwrap();
        let res = run(ProcessorConfig::dual_cluster_8way(), &p);
        assert!(res.stats.dual_distributed >= 40, "stats: {:?}", res.stats);
        assert!(res.stats.results_forwarded > 0 || res.stats.operands_forwarded > 0);
    }

    #[test]
    fn dual_costs_cycles_versus_single_on_pingpong() {
        let mut b = ProgramBuilder::<ArchReg>::new("pingpong");
        let e = ArchReg::int(2);
        let o = ArchReg::int(3);
        b.lda(e, 0);
        for _ in 0..50 {
            b.addq_imm(o, e, 1);
            b.addq_imm(e, o, 1);
        }
        let p = b.finish().unwrap();
        let dual = run(ProcessorConfig::dual_cluster_8way(), &p);
        let single = run(ProcessorConfig::single_cluster_8way(), &p);
        assert!(
            dual.stats.cycles > single.stats.cycles,
            "dual {} vs single {}",
            dual.stats.cycles,
            single.stats.cycles
        );
    }

    #[test]
    fn global_register_writes_update_both_clusters() {
        let mut b = ProgramBuilder::<ArchReg>::new("global");
        let sp = ArchReg::SP;
        let e = ArchReg::int(2);
        let o = ArchReg::int(3);
        b.lda(sp, 0x8000);
        b.addq_imm(e, sp, 8); // C0 reads sp locally
        b.addq_imm(o, sp, 16); // C1 reads sp locally
        let p = b.finish().unwrap();
        let res = run(ProcessorConfig::dual_cluster_8way(), &p);
        // lda sp is scenario 4 (global destination).
        assert_eq!(res.stats.scenario[3], 1, "stats: {:?}", res.stats.scenario);
        // The two adds are single-distributed (global sources are free).
        assert_eq!(res.stats.scenario[0], 2);
        assert_eq!(res.stats.retired, 3);
    }

    #[test]
    fn mispredicted_branches_stall_fetch() {
        // A data-dependent branch pattern the predictor cannot learn:
        // use an LCG-driven condition.
        let mut b = ProgramBuilder::<ArchReg>::new("branchy");
        let x = ArchReg::int(2);
        let bit = ArchReg::int(4);
        let i = ArchReg::int(6);
        let body = b.new_block("body");
        let skip = b.new_block("skip");
        let join = b.new_block("join");
        b.lda(x, 12345);
        b.lda(i, 200);
        b.switch_to(body);
        b.mulq_imm(x, x, 1103515245);
        b.addq_imm(x, x, 12345);
        b.srl_imm(bit, x, 16);
        b.and_imm(bit, bit, 1);
        b.bne(bit, join);
        b.switch_to(skip);
        b.addq_imm(x, x, 7);
        b.switch_to(join);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let res = run(ProcessorConfig::single_cluster_8way(), &p);
        assert!(res.stats.branches >= 400);
        assert!(
            res.stats.mispredicts > res.stats.branches / 10,
            "unpredictable branch should mispredict: {:?}",
            (res.stats.mispredicts, res.stats.branches)
        );
        assert!(res.stats.stall_branch > 0);
    }

    #[test]
    fn dcache_misses_cost_cycles() {
        // Stride through 256 KB (beyond the 64 KB cache) twice.
        let mut b = ProgramBuilder::<ArchReg>::new("stride");
        let base = ArchReg::int(2);
        let x = ArchReg::int(4);
        let i = ArchReg::int(6);
        let body = b.new_block("body");
        b.lda(i, 8192);
        b.lda(base, 0x10_0000);
        b.switch_to(body);
        b.ldq(x, base, 0);
        b.addq_imm(base, base, 32);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let res = run(ProcessorConfig::single_cluster_8way(), &p);
        assert!(res.stats.dcache.misses > 8000, "dcache: {:?}", res.stats.dcache);
    }

    #[test]
    fn event_log_is_recorded_when_enabled() {
        let p = chain_program(3);
        let res = run(ProcessorConfig::single_cluster_8way().with_events(), &p);
        let events = res.events.expect("events enabled");
        assert!(events.events().iter().any(|e| e.kind == EventKind::Retired));
        assert!(events.events().iter().any(|e| e.kind == EventKind::MasterIssued));
    }

    #[test]
    fn empty_trace_simulates_to_zero_cycles() {
        let res = Processor::new(ProcessorConfig::single_cluster_8way()).run_trace(&[]).unwrap();
        assert_eq!(res.stats.cycles, 0);
        assert_eq!(res.stats.retired, 0);
    }

    #[test]
    fn determinism() {
        let p = chain_program(100);
        let a = run(ProcessorConfig::dual_cluster_8way(), &p);
        let b = run(ProcessorConfig::dual_cluster_8way(), &p);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn waiter_arena_purge_drops_squashed_consumers_and_recycles_nodes() {
        let mut arena = WaiterArena::new();
        let mut head = NIL;
        head = arena.push(head, 1, ACT_MASTER);
        head = arena.push(head, 5, ACT_SLAVE);
        head = arena.push(head, 3, ACT_MASTER);

        // Consumers 3 and 5 are squashed; only consumer 1 survives.
        let head = arena.purge_squashed(head, 3);
        let mut survivors = Vec::new();
        let mut cur = head;
        while cur != NIL {
            let w = &arena.nodes[cur as usize];
            survivors.push((w.consumer, w.action));
            cur = w.next;
        }
        assert_eq!(survivors, vec![(1, ACT_MASTER)]);

        // The two purged nodes went back to the free list: further
        // pushes must reuse them rather than grow the arena.
        let len_before = arena.nodes.len();
        let mut head2 = arena.push(NIL, 7, ACT_MASTER);
        head2 = arena.push(head2, 9, ACT_SLAVE);
        let _ = head2;
        assert_eq!(arena.nodes.len(), len_before, "freed nodes are recycled");
    }

    /// Alternating even/odd destinations: every add dual-distributes
    /// and moves an operand or result through a transfer buffer.
    fn pingpong_program(len: usize) -> Program<ArchReg> {
        let mut b = ProgramBuilder::<ArchReg>::new("pingpong");
        let e = ArchReg::int(2);
        let o = ArchReg::int(3);
        b.lda(e, 0);
        for _ in 0..len {
            b.addq_imm(o, e, 1);
            b.addq_imm(e, o, 1);
        }
        b.finish().unwrap()
    }

    #[test]
    fn wedge_threshold_is_a_knob_and_wedging_is_reported() {
        // Leaking every transfer-buffer entry of a 1-entry-buffer
        // machine makes forwarding impossible forever, with no entry
        // *held* by anyone — exactly the unattributable hard stall the
        // wedge detector exists for.
        let p = pingpong_program(20);
        let mut wedge_cycles = Vec::new();
        for threshold in [8u32, 200] {
            let mut cfg = ProcessorConfig::dual_cluster_8way();
            cfg.operand_buffer = 1;
            cfg.result_buffer = 1;
            cfg.wedge_threshold = threshold;
            cfg.faults = vec![
                FaultInjection::LeakOperandBuffer { cycle: 0 },
                FaultInjection::LeakResultBuffer { cycle: 0 },
            ];
            let err = Processor::new(cfg).run_program(&p).unwrap_err();
            match err {
                SimError::Wedged { cycle, oldest_seq } => {
                    assert!(oldest_seq > 0, "the lda retires before the machine wedges");
                    wedge_cycles.push(cycle);
                }
                other => panic!("expected Wedged, got {other}"),
            }
        }
        assert!(
            wedge_cycles[0] + 100 < wedge_cycles[1],
            "a larger threshold must tolerate a longer stall: {wedge_cycles:?}"
        );
    }

    #[test]
    fn cycle_checker_catches_injected_buffer_leak_immediately() {
        let p = pingpong_program(20);
        let mut cfg = ProcessorConfig::dual_cluster_8way().with_check_level(CheckLevel::Cycle);
        cfg.faults = vec![FaultInjection::LeakOperandBuffer { cycle: 0 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        match err {
            SimError::Invariant { cycle, rule, .. } => {
                assert_eq!(rule, "otb-accounting");
                assert_eq!(cycle, 0, "cycle-level checking detects the leak at once");
            }
            other => panic!("expected Invariant, got {other}"),
        }
    }

    #[test]
    fn retire_checker_catches_injected_buffer_leak_by_first_retirement() {
        let p = pingpong_program(20);
        let mut cfg = ProcessorConfig::dual_cluster_8way().with_check_level(CheckLevel::Retire);
        cfg.faults = vec![FaultInjection::LeakResultBuffer { cycle: 0 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        match err {
            SimError::Invariant { cycle, rule, snapshot, .. } => {
                assert_eq!(rule, "rtb-accounting");
                assert!(cycle > 0, "retire-level checking waits for a retiring cycle");
                assert!(snapshot.contains("window at cycle"), "snapshot: {snapshot}");
            }
            other => panic!("expected Invariant, got {other}"),
        }
    }

    /// A warm loop with trailing straightline work: the loop-exit
    /// branch (taken while iterating, finally not taken) guarantees at
    /// least one misprediction that blocks fetch with trace remaining.
    fn loop_with_tail_program() -> Program<ArchReg> {
        let mut b = ProgramBuilder::<ArchReg>::new("loop-tail");
        let r = ArchReg::int(2);
        let i = ArchReg::int(4);
        let body = b.new_block("body");
        b.lda(r, 0);
        b.lda(i, 8);
        b.switch_to(body);
        b.addq_imm(r, r, 1);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let tail = b.new_block("tail");
        b.switch_to(tail);
        for _ in 0..10 {
            b.addq_imm(r, r, 1);
        }
        b.finish().unwrap()
    }

    #[test]
    fn dropped_completion_event_trips_the_liveness_checker() {
        // Multi-cycle multiplies: the drop fault targets a completion
        // strictly in the future, which single-cycle adds never leave
        // visible at a cycle boundary.
        let mut b = ProgramBuilder::<ArchReg>::new("mul-chain");
        let r = ArchReg::int(2);
        b.lda(r, 3);
        for _ in 0..10 {
            b.mulq(r, r, r);
        }
        let p = b.finish().unwrap();
        let mut cfg = ProcessorConfig::single_cluster_8way().with_check_level(CheckLevel::Cycle);
        cfg.faults = vec![FaultInjection::DropCompletion { cycle: 0 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        match err {
            SimError::Invariant { rule, .. } => assert_eq!(rule, "completion-liveness"),
            other => panic!("expected Invariant, got {other}"),
        }
    }

    #[test]
    fn stuck_branch_resolution_wedges_instead_of_spinning() {
        // Losing the blocking branch's resolution leaves fetch blocked
        // forever while the window drains empty — the tightened
        // progress check must report Wedged (with trace left to run),
        // not spin two billion cycles to the limit.
        let p = loop_with_tail_program();
        let mut cfg = ProcessorConfig::single_cluster_8way();
        cfg.wedge_threshold = 64;
        cfg.faults = vec![FaultInjection::StickBranchResolution { cycle: 0 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        assert!(matches!(err, SimError::Wedged { .. }), "got {err}");
    }

    #[test]
    fn stuck_branch_wedge_is_engine_identical() {
        // The empty-window wedge span must tick cycle by cycle on both
        // engines: the event engine may not fast-forward across cycles
        // the ticked progress check counts toward the threshold.
        let p = loop_with_tail_program();
        let mut errs = Vec::new();
        for engine in [Engine::Ticked, Engine::Event] {
            let mut cfg = ProcessorConfig::single_cluster_8way().with_engine(engine);
            cfg.wedge_threshold = 64;
            cfg.faults = vec![FaultInjection::StickBranchResolution { cycle: 0 }];
            match Processor::new(cfg).run_program(&p).unwrap_err() {
                SimError::Wedged { cycle, oldest_seq } => errs.push((cycle, oldest_seq)),
                other => panic!("expected Wedged, got {other}"),
            }
        }
        assert_eq!(errs[0], errs[1], "engines disagree on the wedge report");
    }

    #[test]
    fn corrupted_transfer_credit_trips_the_accounting_checker() {
        let p = pingpong_program(20);
        let mut cfg = ProcessorConfig::dual_cluster_8way().with_check_level(CheckLevel::Cycle);
        cfg.faults = vec![FaultInjection::CorruptTransferCredit { cycle: 0 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        match err {
            SimError::Invariant { cycle, rule, .. } => {
                assert_eq!(rule, "otb-accounting");
                assert_eq!(cycle, 0, "phantom credits are visible immediately");
            }
            other => panic!("expected Invariant, got {other}"),
        }
    }

    #[test]
    fn delayed_operand_delivery_wedges_the_consumer() {
        // Pushing an in-flight operand delivery past the wedge
        // threshold starves its consumer forever; in-order retirement
        // then blocks the whole machine on it.
        let p = pingpong_program(20);
        let mut cfg = ProcessorConfig::dual_cluster_8way();
        cfg.wedge_threshold = 64;
        cfg.faults = vec![FaultInjection::DelayOperandDelivery { cycle: 0, delay: 1 << 40 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        assert!(matches!(err, SimError::Wedged { .. }), "got {err}");
    }

    #[test]
    fn leaked_phys_reg_trips_the_accounting_checker() {
        let p = pingpong_program(20);
        let mut cfg = ProcessorConfig::dual_cluster_8way().with_check_level(CheckLevel::Cycle);
        cfg.faults = vec![FaultInjection::LeakPhysReg { cycle: 0 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        match err {
            SimError::Invariant { rule, .. } => assert_eq!(rule, "phys-reg-accounting"),
            other => panic!("expected Invariant, got {other}"),
        }
    }

    #[test]
    fn stalled_retirement_wedges() {
        let p = chain_program(30);
        let mut cfg = ProcessorConfig::single_cluster_8way();
        cfg.wedge_threshold = 64;
        cfg.faults = vec![FaultInjection::StallRetire { cycle: 0 }];
        let err = Processor::new(cfg).run_program(&p).unwrap_err();
        assert!(matches!(err, SimError::Wedged { .. }), "got {err}");
    }

    #[test]
    fn hard_watchdog_cancels_with_a_structured_timeout() {
        // A deadline of "now" is already exceeded by the first poll
        // (every 4096 steps), so a long dependent chain must cancel.
        let p = chain_program(6000);
        let _armed = crate::watchdog::arm(Some(std::time::Instant::now()));
        let err = Processor::new(ProcessorConfig::single_cluster_8way())
            .run_program(&p)
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "got {err}");
    }

    #[test]
    fn hard_watchdog_with_headroom_does_not_fire() {
        let p = chain_program(6000);
        let baseline = run(ProcessorConfig::single_cluster_8way(), &p);
        let _armed = crate::watchdog::arm_for(std::time::Duration::from_secs(3600));
        let timed = run(ProcessorConfig::single_cluster_8way(), &p);
        assert_eq!(timed.stats, baseline.stats, "an unhit deadline must not perturb the run");
    }

    #[test]
    fn checker_does_not_perturb_clean_runs() {
        // Buffers of one entry force replay exceptions through the
        // checker; the stats must match the unchecked run exactly.
        let p = pingpong_program(50);
        for mut cfg in [ProcessorConfig::dual_cluster_8way(), {
            let mut tiny = ProcessorConfig::dual_cluster_8way();
            tiny.operand_buffer = 1;
            tiny.result_buffer = 1;
            tiny
        }] {
            cfg.check_level = CheckLevel::Off;
            let baseline = run(cfg.clone(), &p);
            for level in [CheckLevel::Retire, CheckLevel::Cycle] {
                let checked = run(cfg.clone().with_check_level(level), &p);
                assert_eq!(checked.stats, baseline.stats, "level {level:?} diverged");
            }
        }
    }

    #[test]
    fn recurring_deadlock_at_same_base_escalates_and_still_retires() {
        // Four independent instructions; fake a second transfer-buffer
        // deadlock at an unchanged window base (the first replay's base
        // is recorded in `last_replay_base`). The recovery must take the
        // escalated full squash — keeping only the oldest instruction —
        // and the run must still retire everything.
        let mut b = ProgramBuilder::<ArchReg>::new("escalate");
        for i in 0..4i64 {
            b.lda(ArchReg::int(2 + 2 * u8::try_from(i).unwrap()), i);
        }
        let p = b.finish().unwrap();
        let (trace, _) = trace_program(&p).unwrap();
        let cfg = ProcessorConfig::dual_cluster_8way();
        let mut sim = Sim::new(&cfg, trace.as_slice());
        let mut dispatched = 0;
        for _ in 0..100 {
            dispatched += sim.dispatch();
            if dispatched == 4 {
                break;
            }
            sim.now += 1;
        }
        assert_eq!(dispatched, 4);

        // A younger instruction holds a buffer entry, and the previous
        // replay happened at this very base: the non-escalated victim
        // choice (youngest holder) would deadlock again.
        sim.otb_free[0] -= 1;
        sim.window[2].otb_held = true;
        sim.last_replay_base = Some(sim.base);
        sim.blocked_on_buffer = true;
        sim.no_progress_cycles = 1;
        sim.check_progress(0).unwrap();

        assert_eq!(sim.stats.replays, 1);
        assert_eq!(sim.stats.replay_escalations, 1, "same-base recurrence escalates");
        assert_eq!(sim.window.len(), 1, "full squash keeps only the oldest instruction");
        assert_eq!(sim.otb_free[0], cfg.operand_buffer, "squash returned the held entry");

        let result = sim.run().expect("escalated recovery completes the run");
        assert_eq!(result.stats.retired, 4, "everything retires after re-dispatch");
        assert_eq!(result.stats.replay_escalations, 1);
    }

    #[test]
    fn completion_liveness_detects_a_cleared_event_heap() {
        // Multiplies take several cycles, so a scheduled completion is
        // observably in the future at end-of-cycle.
        let mut b = ProgramBuilder::<ArchReg>::new("mul-chain");
        let r = ArchReg::int(2);
        b.lda(r, 3);
        for _ in 0..10 {
            b.mulq_imm(r, r, 3);
        }
        let p = b.finish().unwrap();
        let (trace, _) = trace_program(&p).unwrap();
        let cfg = ProcessorConfig::single_cluster_8way();
        let mut sim = Sim::new(&cfg, trace.as_slice());
        for _ in 0..200 {
            sim.step().unwrap();
            if sim.window.iter().any(|d| matches!(d.master_done, Some(t) if t > sim.now)) {
                break;
            }
        }
        assert!(
            sim.window.iter().any(|d| matches!(d.master_done, Some(t) if t > sim.now)),
            "an in-flight completion exists"
        );
        assert!(sim.validate_invariants(&[0, 0]).is_ok(), "live state validates");

        sim.completions.clear();
        let err = sim.validate_invariants(&[0, 0]).unwrap_err();
        match err {
            SimError::Invariant { rule, .. } => assert_eq!(rule, "completion-liveness"),
            other => panic!("expected Invariant, got {other}"),
        }
    }

    #[test]
    fn replay_drains_window_and_filters_pending_predictor_updates() {
        // Four independent instructions on cluster 0, all dispatched in
        // one group; squashing from seq 2 must drain exactly the two
        // younger entries and drop their pending predictor updates.
        let mut b = ProgramBuilder::<ArchReg>::new("squash");
        for i in 0..4i64 {
            b.lda(ArchReg::int(2 + 2 * u8::try_from(i).unwrap()), i);
        }
        let p = b.finish().unwrap();
        let (trace, _) = trace_program(&p).unwrap();
        let cfg = ProcessorConfig::dual_cluster_8way();
        let mut sim = Sim::new(&cfg, trace.as_slice());
        // The first fetch group takes a cold icache miss; step cycles
        // until the whole group has dispatched.
        let mut dispatched = 0;
        for _ in 0..100 {
            dispatched += sim.dispatch();
            if dispatched == 4 {
                break;
            }
            sim.now += 1;
        }
        assert_eq!(dispatched, 4);
        assert_eq!(sim.window.len(), 4);

        // Synthetic in-flight predictor updates for seqs 1 and 3 (the
        // real path enqueues these at master issue of a conditional).
        sim.pending_bpred.schedule(9, 1, pack_branch(0x40, true, false));
        sim.pending_bpred.schedule(9, 3, pack_branch(0x44, true, true));

        sim.replay_from(2);
        assert_eq!(sim.window.len(), 2, "seqs 2 and 3 are drained");
        assert_eq!(sim.stats.replay_squashed, 2);
        assert_eq!(sim.cursor, 2, "fetch restarts at the squash point");
        let pending: Vec<u64> = sim.pending_bpred.iter().map(|e| e.key).collect();
        assert_eq!(pending, vec![1], "squashed branch updates are dropped");
    }
}
