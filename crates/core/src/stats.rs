//! Simulation statistics.

use mcl_mem::CacheStats;

/// Version tag of the [`SimStats::to_wire_bytes`] encoding. Bump it
/// whenever a field is added, removed, or reordered — the exhaustive
/// destructuring in the codec makes forgetting a compile error, and the
/// on-disk result store treats any version mismatch as a stale entry to
/// recompute, never as data to reinterpret.
pub const STATS_WIRE_VERSION: u32 = 1;

/// Counters accumulated over one simulation run.
///
/// The paper's performance metric is the simulated clock-cycle count
/// ([`SimStats::cycles`]); the companion counters explain *why* a run
/// took the cycles it did — fetch-stall causes, dual-distribution mix,
/// transfer-buffer pressure, replay exceptions, branch prediction, and
/// cache behaviour.
///
/// # The stall-accounting identity
///
/// Every simulated cycle is charged to exactly one front-end bucket:
/// either at least one instruction dispatched ([`SimStats::dispatch_cycles`]),
/// or the trace was exhausted and the window was draining
/// ([`SimStats::drain_cycles`]), or dispatch was stalled for exactly one
/// attributed cause. So, for every run:
///
/// ```text
/// cycles == dispatch_cycles + drain_cycles
///         + stall_icache + stall_branch + stall_dq + stall_regs
///         + stall_replay + stall_reassign
/// ```
///
/// [`SimStats::check_stall_identity`] verifies this; `repro selftest`
/// asserts it for every benchmark/configuration cell.
// `SimStats` is compared with `==` across engines (the ticked-vs-event
// differential bar), so engine-mechanics counters like dead-cycle skips
// live in `FastForward`, not here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Simulated clock cycles (the paper's metric).
    pub cycles: u64,
    /// Cycles in which at least one instruction dispatched.
    pub dispatch_cycles: u64,
    /// Cycles after the trace was exhausted, spent draining the window.
    pub drain_cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Dynamic instructions distributed to exactly one cluster.
    pub single_distributed: u64,
    /// Dynamic instructions distributed to both clusters.
    pub dual_distributed: u64,
    /// Scenario mix of Section 2.1 (`scenario[0]` = scenario 1 …
    /// `scenario[4]` = scenario 5).
    pub scenario: [u64; 5],
    /// Instructions distributed to each cluster (copies counted per
    /// cluster).
    pub per_cluster_dispatched: [u64; 2],
    /// Instructions issued from each cluster's dispatch queue.
    pub per_cluster_issued: [u64; 2],

    /// Conditional branches predicted.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,

    /// Instruction-replay exceptions taken to free a transfer-buffer
    /// entry (Section 2.1).
    pub replays: u64,
    /// Instructions squashed by replay exceptions.
    pub replay_squashed: u64,
    /// Replay exceptions escalated to a full squash because the same
    /// deadlock recurred at the same window base without an intervening
    /// retirement.
    pub replay_escalations: u64,
    /// Dynamic register reassignments performed (Section 6 mechanism).
    pub reassignments: u64,
    /// Cycles spent draining and switching at reassignment points.
    pub stall_reassign: u64,

    /// Operands forwarded through operand transfer buffers.
    pub operands_forwarded: u64,
    /// Results forwarded through result transfer buffers.
    pub results_forwarded: u64,
    /// Cycles in which some ready slave copy could not issue because the
    /// target operand transfer buffer was full.
    pub otb_full_stalls: u64,
    /// Cycles in which some ready master copy could not issue because
    /// the target result transfer buffer was full.
    pub rtb_full_stalls: u64,

    /// Fetch/dispatch stall cycles by cause.
    pub stall_icache: u64,
    /// Cycles dispatch was blocked on a mispredicted branch: waiting for
    /// it to resolve, plus the post-resolution redirect cycle.
    pub stall_branch: u64,
    /// Cycles dispatch was blocked on a full dispatch queue.
    pub stall_dq: u64,
    /// Cycles dispatch was blocked on an empty physical-register free
    /// list.
    pub stall_regs: u64,
    /// Cycles dispatch was blocked by replay-exception recovery.
    pub stall_replay: u64,

    /// Times an instruction issued while an older instruction in the
    /// same dispatch queue was still waiting (the paper's
    /// "instruction-issue disorder").
    pub issue_disorder: u64,

    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// Data-cache statistics.
    pub dcache: CacheStats,
}

impl SimStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Fraction of dynamic instructions that were dual-distributed.
    #[must_use]
    pub fn dual_fraction(&self) -> f64 {
        let total = self.single_distributed + self.dual_distributed;
        if total == 0 {
            0.0
        } else {
            self.dual_distributed as f64 / total as f64
        }
    }

    /// The paper's performance ratio `C_dual / C_single` for this run
    /// against a baseline cycle count.
    #[must_use]
    pub fn ratio_against(&self, single_cluster_cycles: u64) -> f64 {
        self.cycles as f64 / single_cluster_cycles as f64
    }

    /// Total whole-cycle front-end stalls, summed over causes.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_icache
            + self.stall_branch
            + self.stall_dq
            + self.stall_regs
            + self.stall_replay
            + self.stall_reassign
    }

    /// Folds another run's counters into this one. Every `SimStats`
    /// field is a pure sum over simulated cycles/instructions, so the
    /// per-window statistics of a time-window-sharded run (see
    /// [`crate::shard`]) merge by plain addition — and because the
    /// stall-identity equation is linear, it survives the merge: if it
    /// holds per window it holds for the sum.
    ///
    /// When adding a field to `SimStats`, extend this method; the
    /// sharded-vs-serial differential tests catch omissions.
    pub fn absorb(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.dispatch_cycles += other.dispatch_cycles;
        self.drain_cycles += other.drain_cycles;
        self.retired += other.retired;
        self.single_distributed += other.single_distributed;
        self.dual_distributed += other.dual_distributed;
        for (s, o) in self.scenario.iter_mut().zip(other.scenario.iter()) {
            *s += o;
        }
        for c in 0..2 {
            self.per_cluster_dispatched[c] += other.per_cluster_dispatched[c];
            self.per_cluster_issued[c] += other.per_cluster_issued[c];
        }
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.replays += other.replays;
        self.replay_squashed += other.replay_squashed;
        self.replay_escalations += other.replay_escalations;
        self.reassignments += other.reassignments;
        self.stall_reassign += other.stall_reassign;
        self.operands_forwarded += other.operands_forwarded;
        self.results_forwarded += other.results_forwarded;
        self.otb_full_stalls += other.otb_full_stalls;
        self.rtb_full_stalls += other.rtb_full_stalls;
        self.stall_icache += other.stall_icache;
        self.stall_branch += other.stall_branch;
        self.stall_dq += other.stall_dq;
        self.stall_regs += other.stall_regs;
        self.stall_replay += other.stall_replay;
        self.issue_disorder += other.issue_disorder;
        self.icache.absorb(&other.icache);
        self.dcache.absorb(&other.dcache);
    }

    /// Serializes the counters into the versioned little-endian wire
    /// form the persistent result store caches. The destructuring is
    /// exhaustive on purpose: adding a `SimStats` (or [`CacheStats`])
    /// field without extending this codec — and bumping
    /// [`STATS_WIRE_VERSION`] — does not compile.
    #[must_use]
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let SimStats {
            cycles,
            dispatch_cycles,
            drain_cycles,
            retired,
            single_distributed,
            dual_distributed,
            scenario,
            per_cluster_dispatched,
            per_cluster_issued,
            branches,
            mispredicts,
            replays,
            replay_squashed,
            replay_escalations,
            reassignments,
            stall_reassign,
            operands_forwarded,
            results_forwarded,
            otb_full_stalls,
            rtb_full_stalls,
            stall_icache,
            stall_branch,
            stall_dq,
            stall_regs,
            stall_replay,
            issue_disorder,
            icache,
            dcache,
        } = self;
        let mut out = Vec::with_capacity(4 + 35 * 8);
        out.extend_from_slice(&STATS_WIRE_VERSION.to_le_bytes());
        let mut put = |v: u64| out.extend_from_slice(&v.to_le_bytes());
        for v in [
            *cycles,
            *dispatch_cycles,
            *drain_cycles,
            *retired,
            *single_distributed,
            *dual_distributed,
        ] {
            put(v);
        }
        for v in scenario {
            put(*v);
        }
        for v in per_cluster_dispatched.iter().chain(per_cluster_issued.iter()) {
            put(*v);
        }
        for v in [
            *branches,
            *mispredicts,
            *replays,
            *replay_squashed,
            *replay_escalations,
            *reassignments,
            *stall_reassign,
            *operands_forwarded,
            *results_forwarded,
            *otb_full_stalls,
            *rtb_full_stalls,
            *stall_icache,
            *stall_branch,
            *stall_dq,
            *stall_regs,
            *stall_replay,
            *issue_disorder,
        ] {
            put(v);
        }
        for cache in [icache, dcache] {
            let CacheStats { accesses, hits, misses, merged_misses, evictions } = *cache;
            for v in [accesses, hits, misses, merged_misses, evictions] {
                put(v);
            }
        }
        out
    }

    /// Decodes [`SimStats::to_wire_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a description on version mismatch, truncation, or
    /// trailing bytes — callers (the result store) treat every such
    /// entry as corrupt and recompute.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<SimStats, String> {
        let mut r = WireReader { bytes, at: 0 };
        let version = r.u32()?;
        if version != STATS_WIRE_VERSION {
            return Err(format!(
                "stats wire version {version}, expected {STATS_WIRE_VERSION}"
            ));
        }
        let stats = SimStats {
            cycles: r.u64()?,
            dispatch_cycles: r.u64()?,
            drain_cycles: r.u64()?,
            retired: r.u64()?,
            single_distributed: r.u64()?,
            dual_distributed: r.u64()?,
            scenario: [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?],
            per_cluster_dispatched: [r.u64()?, r.u64()?],
            per_cluster_issued: [r.u64()?, r.u64()?],
            branches: r.u64()?,
            mispredicts: r.u64()?,
            replays: r.u64()?,
            replay_squashed: r.u64()?,
            replay_escalations: r.u64()?,
            reassignments: r.u64()?,
            stall_reassign: r.u64()?,
            operands_forwarded: r.u64()?,
            results_forwarded: r.u64()?,
            otb_full_stalls: r.u64()?,
            rtb_full_stalls: r.u64()?,
            stall_icache: r.u64()?,
            stall_branch: r.u64()?,
            stall_dq: r.u64()?,
            stall_regs: r.u64()?,
            stall_replay: r.u64()?,
            issue_disorder: r.u64()?,
            icache: r.cache()?,
            dcache: r.cache()?,
        };
        if r.at != bytes.len() {
            return Err(format!("{} trailing bytes after stats", bytes.len() - r.at));
        }
        Ok(stats)
    }

    /// Verifies the stall-accounting identity (see the type-level docs):
    /// every cycle is a dispatch cycle, a drain cycle, or exactly one
    /// attributed stall.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance when the identity does not
    /// hold — a simulator accounting bug.
    pub fn check_stall_identity(&self) -> Result<(), String> {
        let accounted = self.dispatch_cycles + self.drain_cycles + self.stall_cycles();
        if accounted == self.cycles {
            return Ok(());
        }
        Err(format!(
            "stall accounting does not cover the run: cycles={} but \
             dispatch={} + drain={} + icache={} + branch={} + dq={} + regs={} \
             + replay={} + reassign={} = {}",
            self.cycles,
            self.dispatch_cycles,
            self.drain_cycles,
            self.stall_icache,
            self.stall_branch,
            self.stall_dq,
            self.stall_regs,
            self.stall_replay,
            self.stall_reassign,
            accounted,
        ))
    }
}

/// Bounds-checked little-endian cursor for [`SimStats::from_wire_bytes`].
struct WireReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl WireReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(
            || format!("stats truncated at byte {} (wanted {n} more)", self.at),
        )?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn cache(&mut self) -> Result<CacheStats, String> {
        Ok(CacheStats {
            accesses: self.u64()?,
            hits: self.u64()?,
            misses: self.u64()?,
            merged_misses: self.u64()?,
            evictions: self.u64()?,
        })
    }
}

/// Dead-cycle-skip counters from the event-driven engine.
///
/// These describe how the engine reached the answer, not the answer
/// itself: the same run under [`Engine::Ticked`](crate::config::Engine)
/// reports zeros here while producing byte-identical [`SimStats`].
/// `skipped_cycles` are included in [`SimStats::cycles`] (and charged to
/// their stall buckets) — this struct only attributes how many of them
/// were covered by fast-forward jumps instead of ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastForward {
    /// Simulated cycles covered by fast-forward jumps rather than ticks.
    pub skipped_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub jumps: u64,
}

impl FastForward {
    /// Folds another run's counters into this one (used by the bench
    /// driver to aggregate per-cell totals).
    pub fn add(&mut self, other: &FastForward) {
        self.skipped_cycles += other.skipped_cycles;
        self.jumps += other.jumps;
    }
}

/// The percentage speedup the paper reports in Table 2:
/// `100 - 100 × (C_dual / C_single)` — positive is a speedup, negative a
/// slowdown.
#[must_use]
pub fn speedup_percent(dual_cycles: u64, single_cycles: u64) -> f64 {
    100.0 - 100.0 * (dual_cycles as f64 / single_cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let stats = SimStats {
            cycles: 1000,
            retired: 2500,
            branches: 100,
            mispredicts: 7,
            single_distributed: 900,
            dual_distributed: 100,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        assert!((stats.mispredict_rate() - 0.07).abs() < 1e-12);
        assert!((stats.dual_fraction() - 0.1).abs() < 1e-12);
        assert!((stats.ratio_against(800) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn speedup_sign_convention_matches_table2() {
        // More dual cycles than single → slowdown → negative percentage.
        assert!(speedup_percent(1140, 1000) < 0.0);
        assert!((speedup_percent(1140, 1000) - -14.0).abs() < 1e-9);
        // compress with the local scheduler: +6 in the paper.
        assert!(speedup_percent(940, 1000) > 0.0);
    }

    #[test]
    fn zero_division_is_guarded() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.mispredict_rate(), 0.0);
        assert_eq!(stats.dual_fraction(), 0.0);
    }

    #[test]
    fn wire_codec_round_trips_and_rejects_corruption() {
        let mut stats = SimStats {
            cycles: 123_456,
            dispatch_cycles: 100_000,
            drain_cycles: 3456,
            retired: 250_000,
            scenario: [1, 2, 3, 4, 5],
            per_cluster_dispatched: [9, 8],
            per_cluster_issued: [7, 6],
            branches: 500,
            mispredicts: 17,
            stall_icache: 20_000,
            issue_disorder: 42,
            ..SimStats::default()
        };
        stats.icache.accesses = 99;
        stats.dcache.misses = 3;
        let wire = stats.to_wire_bytes();
        assert_eq!(SimStats::from_wire_bytes(&wire).unwrap(), stats);

        // Truncation, trailing garbage, and a wrong version all fail.
        assert!(SimStats::from_wire_bytes(&wire[..wire.len() - 1]).is_err());
        let mut long = wire.clone();
        long.push(0);
        assert!(SimStats::from_wire_bytes(&long).is_err());
        let mut wrong = wire;
        wrong[0] ^= 0xFF;
        let err = SimStats::from_wire_bytes(&wrong).unwrap_err();
        assert!(err.contains("version"), "{err}");
        assert!(SimStats::from_wire_bytes(&[]).is_err());
    }

    #[test]
    fn stall_identity_accepts_balanced_and_rejects_unbalanced() {
        let mut stats = SimStats {
            cycles: 100,
            dispatch_cycles: 60,
            drain_cycles: 10,
            stall_icache: 5,
            stall_branch: 9,
            stall_dq: 6,
            stall_regs: 4,
            stall_replay: 3,
            stall_reassign: 3,
            ..SimStats::default()
        };
        stats.check_stall_identity().expect("balanced");
        assert_eq!(stats.stall_cycles(), 30);
        stats.stall_dq += 1;
        let err = stats.check_stall_identity().expect_err("unbalanced");
        assert!(err.contains("cycles=100"), "describes the imbalance: {err}");
        // The empty run trivially satisfies the identity.
        SimStats::default().check_stall_identity().expect("empty run");
    }
}
