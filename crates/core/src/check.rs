//! Architectural invariant checking.
//!
//! The execution model of Section 2.1 rests on exact resource
//! accounting: every dispatch-queue slot, physical register, and
//! operand/result transfer-buffer entry that is allocated must be held
//! by exactly one in-flight instruction or be scheduled to free at a
//! known cycle. A bookkeeping bug anywhere in that machinery silently
//! corrupts cycle counts — the paper's metric — long before it crashes.
//!
//! [`CheckLevel`] selects how aggressively the simulator re-derives and
//! cross-checks that state from the window:
//!
//! - [`CheckLevel::Off`] — no checking (the default; zero cost);
//! - [`CheckLevel::Retire`] — validate on every cycle that retires at
//!   least one instruction (bounds the lag between a corruption and its
//!   detection by one retirement, at a few percent overhead);
//! - [`CheckLevel::Cycle`] — validate every cycle (immediate detection;
//!   the full window walk makes long runs several times slower).
//!
//! Violations surface as [`SimError::Invariant`](crate::SimError) with
//! the failing rule, a detail string, and a pipeview-style window
//! snapshot, instead of a debug-only assert or silent divergence.
//!
//! The checker never mutates simulation state, so enabling it cannot
//! change any statistic of a correct run — `repro` output is
//! byte-identical with the checker on or off.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// How much architectural-invariant validation the simulator performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckLevel {
    /// No validation.
    #[default]
    Off,
    /// Validate at every retiring cycle.
    Retire,
    /// Validate every cycle.
    Cycle,
}

impl CheckLevel {
    /// The level's command-line name (`off` / `retire` / `cycle`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CheckLevel::Off => "off",
            CheckLevel::Retire => "retire",
            CheckLevel::Cycle => "cycle",
        }
    }

    fn from_u8(v: u8) -> CheckLevel {
        match v {
            1 => CheckLevel::Retire,
            2 => CheckLevel::Cycle,
            _ => CheckLevel::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            CheckLevel::Off => 0,
            CheckLevel::Retire => 1,
            CheckLevel::Cycle => 2,
        }
    }
}

impl FromStr for CheckLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<CheckLevel, String> {
        match s {
            "off" => Ok(CheckLevel::Off),
            "retire" => Ok(CheckLevel::Retire),
            "cycle" => Ok(CheckLevel::Cycle),
            other => Err(format!("unknown check level `{other}` (use off, retire, or cycle)")),
        }
    }
}

/// The process-wide default check level, read by the
/// [`ProcessorConfig`](crate::ProcessorConfig) presets.
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Sets the default check level for every configuration constructed
/// afterwards. Drivers call this once at startup (e.g. `repro --check
/// retire`) so the level reaches configurations built deep inside
/// experiment code; explicitly-set `check_level` fields are unaffected.
pub fn set_global_level(level: CheckLevel) {
    GLOBAL_LEVEL.store(level.as_u8(), Ordering::Relaxed);
}

/// The current process-wide default check level.
#[must_use]
pub fn global_level() -> CheckLevel {
    CheckLevel::from_u8(GLOBAL_LEVEL.load(Ordering::Relaxed))
}

/// A deliberate fault injected into the simulator's resource
/// accounting, for proving the checker catches real corruption (used by
/// `repro selftest` and the `repro chaos` campaign). Faults are applied
/// at the start of the given cycle (some wait in a pending state until
/// their target structure exists) and are *not* visible to the
/// checker's expected values — every fault must therefore surface as a
/// structured [`SimError`](crate::SimError): an accounting/liveness
/// `Invariant` or a `Wedged` progress failure, never as silently wrong
/// statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultInjection {
    /// Decrement every cluster's operand-transfer-buffer free count by
    /// one without any holder.
    LeakOperandBuffer {
        /// The cycle at which the leak is applied.
        cycle: u64,
    },
    /// Decrement every cluster's result-transfer-buffer free count by
    /// one without any holder.
    LeakResultBuffer {
        /// The cycle at which the leak is applied.
        cycle: u64,
    },
    /// Remove the earliest still-live future completion event from the
    /// completion queue (as if the functional unit never signalled).
    /// The fault stays pending until such an event exists. Detected by
    /// the `completion-liveness` rule at [`CheckLevel::Cycle`].
    DropCompletion {
        /// The first cycle at which a live event may be dropped.
        cycle: u64,
    },
    /// Remove the pending resolution event of the branch currently
    /// blocking fetch (as if the resolution bus lost the update), so
    /// fetch stays blocked forever. The fault waits until fetch is
    /// blocked on a branch. Surfaces as `Wedged` once the window drains.
    StickBranchResolution {
        /// The first cycle at which a blocking branch may be stuck.
        cycle: u64,
    },
    /// Increment every cluster's operand- and result-transfer-buffer
    /// free counts by one (phantom credits above capacity). Detected by
    /// the `otb-accounting`/`rtb-accounting` rules.
    CorruptTransferCredit {
        /// The cycle at which the credits are corrupted.
        cycle: u64,
    },
    /// Delay the earliest scheduled cross-cluster operand delivery by
    /// `delay` cycles (as if the transfer network stalled the packet).
    /// The fault stays pending until a delivery is in flight. With a
    /// delay far beyond `wedge_threshold` the consumer never issues and
    /// the run surfaces as `Wedged`.
    DelayOperandDelivery {
        /// The first cycle at which a delivery may be delayed.
        cycle: u64,
        /// How many cycles the delivery is pushed back.
        delay: u64,
    },
    /// Decrement every cluster's integer physical-register free count
    /// by one without any holder. Detected by `phys-reg-accounting`.
    LeakPhysReg {
        /// The cycle at which the leak is applied.
        cycle: u64,
    },
    /// Permanently stop the retirement stage from the given cycle (as
    /// if the commit port latched up). The window fills and drains into
    /// a `Wedged` report (or `replay-progress` when the machine loops
    /// through buffer-blocked replays instead).
    StallRetire {
        /// The first cycle at which retirement is suppressed.
        cycle: u64,
    },
}

impl FaultInjection {
    /// The cycle at which the fault first becomes applicable.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match self {
            FaultInjection::LeakOperandBuffer { cycle }
            | FaultInjection::LeakResultBuffer { cycle }
            | FaultInjection::DropCompletion { cycle }
            | FaultInjection::StickBranchResolution { cycle }
            | FaultInjection::CorruptTransferCredit { cycle }
            | FaultInjection::DelayOperandDelivery { cycle, .. }
            | FaultInjection::LeakPhysReg { cycle }
            | FaultInjection::StallRetire { cycle } => *cycle,
        }
    }

    /// A short stable name for reports and campaign matrices.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultInjection::LeakOperandBuffer { .. } => "leak-operand-buffer",
            FaultInjection::LeakResultBuffer { .. } => "leak-result-buffer",
            FaultInjection::DropCompletion { .. } => "drop-completion",
            FaultInjection::StickBranchResolution { .. } => "stick-branch-resolution",
            FaultInjection::CorruptTransferCredit { .. } => "corrupt-transfer-credit",
            FaultInjection::DelayOperandDelivery { .. } => "delay-operand-delivery",
            FaultInjection::LeakPhysReg { .. } => "leak-phys-reg",
            FaultInjection::StallRetire { .. } => "stall-retire",
        }
    }
}

/// One detected invariant violation (converted by the simulator into
/// [`SimError::Invariant`](crate::SimError) with cycle and snapshot
/// attached).
#[derive(Debug, Clone)]
pub(crate) struct Violation {
    pub(crate) rule: &'static str,
    pub(crate) detail: String,
}

impl Violation {
    pub(crate) fn new(rule: &'static str, detail: impl Into<String>) -> Violation {
        Violation { rule, detail: detail.into() }
    }
}

/// Per-cluster resource accounting collected from the live window, to
/// be checked against configured capacities.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClusterTally {
    pub(crate) dq_free: u64,
    pub(crate) dq_held: u64,
    pub(crate) dq_capacity: u64,
    pub(crate) otb_free: u64,
    pub(crate) otb_held: u64,
    pub(crate) otb_pending: u64,
    pub(crate) otb_capacity: u64,
    pub(crate) rtb_free: u64,
    pub(crate) rtb_held: u64,
    pub(crate) rtb_pending: u64,
    pub(crate) rtb_capacity: u64,
    pub(crate) int_free: i64,
    pub(crate) int_held: i64,
    pub(crate) int_capacity: i64,
    pub(crate) fp_free: i64,
    pub(crate) fp_held: i64,
    pub(crate) fp_capacity: i64,
    pub(crate) issued: u32,
    pub(crate) issue_limit: u32,
}

/// Checks one cluster's tally: every resource's free + held (+ pending,
/// for the transfer buffers, whose frees are scheduled a cycle ahead)
/// must equal its capacity, and the cycle's issue count must respect
/// the per-cluster width.
pub(crate) fn verify_cluster(cluster: usize, t: &ClusterTally) -> Result<(), Violation> {
    if t.dq_free + t.dq_held != t.dq_capacity {
        return Err(Violation::new(
            "dq-accounting",
            format!(
                "cluster {cluster}: {} free + {} held != {} dispatch-queue entries",
                t.dq_free, t.dq_held, t.dq_capacity
            ),
        ));
    }
    if t.otb_free + t.otb_held + t.otb_pending != t.otb_capacity {
        return Err(Violation::new(
            "otb-accounting",
            format!(
                "cluster {cluster}: {} free + {} held + {} pending != {} operand-buffer entries",
                t.otb_free, t.otb_held, t.otb_pending, t.otb_capacity
            ),
        ));
    }
    if t.rtb_free + t.rtb_held + t.rtb_pending != t.rtb_capacity {
        return Err(Violation::new(
            "rtb-accounting",
            format!(
                "cluster {cluster}: {} free + {} held + {} pending != {} result-buffer entries",
                t.rtb_free, t.rtb_held, t.rtb_pending, t.rtb_capacity
            ),
        ));
    }
    if t.int_free < 0 || t.int_free + t.int_held != t.int_capacity {
        return Err(Violation::new(
            "phys-reg-accounting",
            format!(
                "cluster {cluster}: {} free + {} held != {} available integer registers",
                t.int_free, t.int_held, t.int_capacity
            ),
        ));
    }
    if t.fp_free < 0 || t.fp_free + t.fp_held != t.fp_capacity {
        return Err(Violation::new(
            "phys-reg-accounting",
            format!(
                "cluster {cluster}: {} free + {} held != {} available floating-point registers",
                t.fp_free, t.fp_held, t.fp_capacity
            ),
        ));
    }
    if t.issued > t.issue_limit {
        return Err(Violation::new(
            "issue-width",
            format!(
                "cluster {cluster}: issued {} copies in one cycle, width is {}",
                t.issued, t.issue_limit
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_and_names_round_trip() {
        for level in [CheckLevel::Off, CheckLevel::Retire, CheckLevel::Cycle] {
            assert_eq!(level.name().parse::<CheckLevel>().unwrap(), level);
        }
        assert!("paranoid".parse::<CheckLevel>().is_err());
    }

    #[test]
    fn balanced_tally_verifies() {
        let t = ClusterTally {
            dq_free: 60,
            dq_held: 4,
            dq_capacity: 64,
            otb_free: 6,
            otb_held: 1,
            otb_pending: 1,
            otb_capacity: 8,
            rtb_free: 8,
            rtb_capacity: 8,
            int_free: 30,
            int_held: 2,
            int_capacity: 32,
            fp_free: 32,
            fp_capacity: 32,
            issued: 4,
            issue_limit: 4,
            ..ClusterTally::default()
        };
        assert!(verify_cluster(0, &t).is_ok());
    }

    #[test]
    fn each_imbalance_names_its_rule() {
        let ok = ClusterTally {
            dq_capacity: 8,
            dq_free: 8,
            otb_capacity: 2,
            otb_free: 2,
            rtb_capacity: 2,
            rtb_free: 2,
            int_capacity: 32,
            int_free: 32,
            fp_capacity: 32,
            fp_free: 32,
            issue_limit: 4,
            ..ClusterTally::default()
        };
        let mut t = ok;
        t.dq_free = 7;
        assert_eq!(verify_cluster(0, &t).unwrap_err().rule, "dq-accounting");
        let mut t = ok;
        t.otb_free = 1;
        assert_eq!(verify_cluster(0, &t).unwrap_err().rule, "otb-accounting");
        let mut t = ok;
        t.rtb_pending = 1;
        assert_eq!(verify_cluster(0, &t).unwrap_err().rule, "rtb-accounting");
        let mut t = ok;
        t.int_held = 1;
        assert_eq!(verify_cluster(0, &t).unwrap_err().rule, "phys-reg-accounting");
        let mut t = ok;
        t.fp_free = -1;
        assert_eq!(verify_cluster(1, &t).unwrap_err().rule, "phys-reg-accounting");
        let mut t = ok;
        t.issued = 5;
        assert_eq!(verify_cluster(0, &t).unwrap_err().rule, "issue-width");
    }
}
