//! Per-instruction pipeline lifecycle tracing.
//!
//! [`PipeTraceProbe`] records, for every dynamic op inside a selectable
//! `[start, end)` sequence window, the full lifecycle — fetch,
//! dispatch, master issue, completion, retire — plus the assigned
//! clusters, replay count, stall annotations, and the inter-cluster
//! operand-delivery edges (producer → consumer through a transfer
//! buffer, with the buffer occupancy at the delivery). Squashed
//! incarnations are kept separately so viewers can render flushed work;
//! they never enter the retired identity set.
//!
//! Memory is bounded: live records track the in-flight window (plus at
//! most one stalled fetch group), and only retired ops, flushed
//! incarnations, and edges inside the selected range are retained.
//!
//! The probe hangs off the same zero-cost [`Probe`] hooks as the rest
//! of the observability stack — with [`super::NullProbe`] every hook
//! site compiles out, and an enabled probe observes without perturbing,
//! so uninstrumented output stays byte-identical.

use std::collections::VecDeque;

use mcl_isa::ClusterId;

use super::{CopyKind, DeliverySource, IssueBlock, Probe, StallCause, TransferKind, TransferPhase};

/// Lifecycle of one retired dynamic op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLifecycle {
    /// Dynamic sequence number (the trace index).
    pub seq: u64,
    /// Cycle the instruction cache delivered the op's line.
    pub fetch: u64,
    /// Cycle the op entered the window.
    pub dispatch: u64,
    /// Cycle the master copy issued.
    pub issue: u64,
    /// Cycle the master copy's result became visible.
    pub complete: u64,
    /// Cycle the op retired.
    pub retire: u64,
    /// Cluster the master copy executed in.
    pub master: ClusterId,
    /// Slave cluster for dual-distributed ops.
    pub slave: Option<ClusterId>,
    /// Cycle the slave copy issued, if it did.
    pub slave_issue: Option<u64>,
    /// Squashed-and-redispatched incarnations that preceded this one.
    pub replays: u32,
    /// The op was inserted by the trace scheduler (not architectural).
    pub sched_inserted: bool,
    /// The master's result crossed to the slave cluster.
    pub slave_receives: bool,
    /// The op is a load that missed in the D-cache.
    pub load_miss: bool,
    /// Cause of the last whole-cycle dispatch stall between fetch and
    /// dispatch, when the op did not dispatch the cycle it was fetched.
    pub dispatch_stall: Option<StallCause>,
    /// Cycles a ready copy was scanned but lost the issue-width race.
    pub blocked_width: u32,
    /// Cycles the slave copy stalled on a full operand transfer buffer.
    pub blocked_otb: u32,
    /// Cycles the master stalled on a full result transfer buffer.
    pub blocked_rtb: u32,
}

/// A squashed incarnation of an op (replay recovery flushed it before
/// retirement; the op re-dispatched afterwards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushedOp {
    /// Dynamic sequence number the incarnation would have retired as.
    pub seq: u64,
    /// Fetch cycle of this incarnation.
    pub fetch: u64,
    /// Dispatch cycle, when the incarnation reached the window.
    pub dispatch: Option<u64>,
    /// Master issue cycle, when the incarnation got that far.
    pub issue: Option<u64>,
    /// Cycle the replay squash flushed it.
    pub squash: u64,
    /// Master cluster, when dispatched.
    pub master: Option<ClusterId>,
}

/// One inter-cluster operand delivery: `consumer`'s master copy became
/// able to read the value `producer` computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowEdge {
    /// Op that produced the value.
    pub producer: u64,
    /// Op whose master copy received it.
    pub consumer: u64,
    /// Cycle the value became readable in the consuming cluster.
    pub deliver: u64,
    /// Buffer the value crossed through: [`TransferKind::Operand`] when
    /// the consumer's slave forwarded it, [`TransferKind::Result`] when
    /// the producer's slave write carried it across.
    pub kind: TransferKind,
    /// Occupied entries in the crossed buffer when the delivery fired.
    pub occupancy: u32,
}

/// In-flight record: one live incarnation, keyed `base + index`.
#[derive(Debug, Clone, Default)]
struct LiveRec {
    fetch: u64,
    dispatch: Option<u64>,
    issue: Option<u64>,
    complete: Option<u64>,
    master: Option<ClusterId>,
    slave: Option<ClusterId>,
    slave_issue: Option<u64>,
    sched_inserted: bool,
    slave_receives: bool,
    load_miss: bool,
    dispatch_stall: Option<StallCause>,
    blocked_width: u32,
    blocked_otb: u32,
    blocked_rtb: u32,
    /// Producers of forwarded operands, resolved at dispatch; popped in
    /// order as the slave's forwards deliver.
    fwd_producers: VecDeque<u64>,
    otb_held: bool,
    rtb_held: bool,
}

/// Finished snapshot of a traced run (see [`PipeTraceProbe::finish`]).
#[derive(Debug, Clone, Default)]
pub struct PipeTrace {
    /// Start of the recorded sequence range (inclusive).
    pub range_start: u64,
    /// End of the recorded sequence range (exclusive).
    pub range_end: u64,
    /// Retired ops inside the range, in retirement (= sequence) order.
    pub ops: Vec<OpLifecycle>,
    /// Squashed incarnations inside the range, in squash order.
    pub flushed: Vec<FlushedOp>,
    /// Inter-cluster deliveries between in-range retired ops.
    pub edges: Vec<DataflowEdge>,
    /// Every retirement the probe saw, range or not.
    pub retired_total: u64,
}

impl PipeTrace {
    /// Retired ops the range should hold for a run that retired
    /// `stats_retired` ops: sequence numbers are dense from zero, so
    /// the range clips against the retirement count on both ends.
    #[must_use]
    pub fn expected_ops(&self, stats_retired: u64) -> u64 {
        self.range_end.min(stats_retired) - self.range_start.min(stats_retired)
    }

    /// The retire-exactness identity: every retired op in range appears
    /// exactly once with monotone lifecycle stamps (fetch ≤ dispatch ≤
    /// issue ≤ complete ≤ retire), every edge endpoint references a
    /// recorded retired op with a delivery no later than the consumer's
    /// issue, and the totals agree with [`crate::stats::SimStats`].
    ///
    /// # Errors
    /// A description of the first violated clause, naming both sides.
    pub fn check_identity(&self, stats_retired: u64) -> Result<(), String> {
        if self.retired_total != stats_retired {
            return Err(format!(
                "pipetrace saw {} retirements != {} SimStats retirements",
                self.retired_total, stats_retired
            ));
        }
        let expected = self.expected_ops(stats_retired);
        if self.ops.len() as u64 != expected {
            return Err(format!(
                "pipetrace recorded {} op(s) != {} expected in range {}..{} of {} retired",
                self.ops.len(),
                expected,
                self.range_start,
                self.range_end,
                stats_retired
            ));
        }
        for (i, op) in self.ops.iter().enumerate() {
            let want = self.range_start.min(stats_retired) + i as u64;
            if op.seq != want {
                return Err(format!(
                    "op {i} has seq {} != {want}: retired ops must appear exactly once, in order",
                    op.seq
                ));
            }
            let stages = [
                ("fetch", op.fetch),
                ("dispatch", op.dispatch),
                ("issue", op.issue),
                ("complete", op.complete),
                ("retire", op.retire),
            ];
            for pair in stages.windows(2) {
                let ((a, at), (b, bt)) = (pair[0], pair[1]);
                if at > bt {
                    return Err(format!(
                        "op {} lifecycle not monotone: {a} {at} > {b} {bt}",
                        op.seq
                    ));
                }
            }
        }
        let in_range =
            |seq: u64| seq >= self.range_start.min(stats_retired) && seq < self.range_end.min(stats_retired);
        for (i, e) in self.edges.iter().enumerate() {
            if !in_range(e.producer) {
                return Err(format!(
                    "edge {i} producer {} is not a recorded retired op (range {}..{})",
                    e.producer, self.range_start, self.range_end
                ));
            }
            if !in_range(e.consumer) {
                return Err(format!(
                    "edge {i} consumer {} is not a recorded retired op (range {}..{})",
                    e.consumer, self.range_start, self.range_end
                ));
            }
            let base = self.range_start.min(stats_retired);
            let consumer = &self.ops[(e.consumer - base) as usize];
            if e.deliver > consumer.issue {
                return Err(format!(
                    "edge {i} delivered at {} after consumer {} issued at {}",
                    e.deliver, e.consumer, consumer.issue
                ));
            }
        }
        for f in &self.flushed {
            if self.ops.binary_search_by_key(&f.seq, |o| o.seq).is_err() && in_range(f.seq) {
                return Err(format!(
                    "flushed incarnation of {} has no retired record in range",
                    f.seq
                ));
            }
        }
        Ok(())
    }
}

/// The lifecycle recorder. Construct with a range, run an observed
/// simulation, then [`PipeTraceProbe::finish`].
#[derive(Debug, Clone)]
pub struct PipeTraceProbe {
    range_start: u64,
    range_end: u64,
    base: u64,
    recs: VecDeque<LiveRec>,
    out: PipeTrace,
    last_stall: Option<(u64, StallCause)>,
    otb_used: [u32; 2],
    rtb_used: [u32; 2],
}

impl PipeTraceProbe {
    /// Records ops with `start <= seq < end`. Pass `0..u64::MAX` for
    /// the whole run.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        PipeTraceProbe {
            range_start: start,
            range_end: end.max(start),
            base: 0,
            recs: VecDeque::new(),
            out: PipeTrace {
                range_start: start,
                range_end: end.max(start),
                ..PipeTrace::default()
            },
            last_stall: None,
            otb_used: [0; 2],
            rtb_used: [0; 2],
        }
    }

    fn in_range(&self, seq: u64) -> bool {
        seq >= self.range_start && seq < self.range_end
    }

    fn rec_mut(&mut self, seq: u64) -> Option<&mut LiveRec> {
        let idx = usize::try_from(seq.checked_sub(self.base)?).ok()?;
        self.recs.get_mut(idx)
    }

    /// Consumes the probe, counting each retired op's flushed
    /// incarnations into its replay count.
    #[must_use]
    pub fn finish(mut self) -> PipeTrace {
        for f in &self.out.flushed {
            if f.dispatch.is_none() {
                continue; // front-end retry, not a pipeline incarnation
            }
            let base = self.range_start;
            if let Some(op) = self
                .out
                .ops
                .get_mut(usize::try_from(f.seq - base).unwrap_or(usize::MAX))
            {
                debug_assert_eq!(op.seq, f.seq);
                op.replays += 1;
            }
        }
        self.out
    }
}

impl Probe for PipeTraceProbe {
    fn fetched(&mut self, cycle: u64, seq: u64) {
        // Stalled fetch groups retry: keep the first firing as the
        // fetch cycle of this incarnation.
        if seq < self.base + self.recs.len() as u64 {
            return;
        }
        if self.recs.is_empty() {
            self.base = seq;
        }
        debug_assert_eq!(seq, self.base + self.recs.len() as u64, "fetch order is dense");
        self.recs.push_back(LiveRec { fetch: cycle, ..LiveRec::default() });
    }

    fn dispatched(&mut self, cycle: u64, seq: u64, master: ClusterId, slave: Option<ClusterId>) {
        let stall = self
            .last_stall
            .filter(|&(c, _)| c <= cycle)
            .map(|(_, cause)| cause);
        if let Some(rec) = self.rec_mut(seq) {
            rec.dispatch = Some(cycle);
            rec.master = Some(master);
            rec.slave = slave;
            // Annotate the stall that delayed this op past its fetch
            // cycle, when one did.
            if let Some(cause) = stall {
                if rec.fetch < cycle {
                    rec.dispatch_stall = Some(cause);
                }
            }
        } else {
            debug_assert!(false, "dispatch without a fetch record for {seq}");
        }
    }

    fn op_dispatch_meta(
        &mut self,
        seq: u64,
        sched_inserted: bool,
        slave_receives: bool,
        _ready_floor: u64,
        _ready_known: bool,
    ) {
        if let Some(rec) = self.rec_mut(seq) {
            rec.sched_inserted = sched_inserted;
            rec.slave_receives = slave_receives;
        }
    }

    fn forwarded_operand_source(&mut self, seq: u64, producer: u64) {
        // Fires while `seq` is the op being dispatched; its record
        // exists (fetch precedes dispatch in the same pass).
        if let Some(rec) = self.rec_mut(seq) {
            rec.fwd_producers.push_back(producer);
        }
    }

    fn operand_delivered(
        &mut self,
        seq: u64,
        avail: u64,
        source: DeliverySource,
        producer: Option<u64>,
    ) {
        if !self.in_range(seq) {
            return;
        }
        let (producer, kind, occupancy) = match source {
            // Local: the producer completed in the consumer's cluster.
            DeliverySource::Completion => return,
            DeliverySource::SlaveWrite => {
                let Some(p) = producer else { return };
                // The write landed in the producer's slave cluster (=
                // the consumer's read cluster); the producer is still
                // live — its write list just fired.
                let Some(cluster) = self
                    .rec_mut(p)
                    .and_then(|r| r.slave)
                    .map(ClusterId::index)
                else {
                    return;
                };
                (p, TransferKind::Result, self.rtb_used[cluster])
            }
            DeliverySource::OperandForward => {
                let Some(rec) = self.rec_mut(seq) else { return };
                let Some(p) = rec.fwd_producers.pop_front() else {
                    return; // architectural source: no producer op
                };
                let Some(cluster) = rec.master.map(ClusterId::index) else { return };
                (p, TransferKind::Operand, self.otb_used[cluster])
            }
        };
        if producer < self.range_start {
            return; // endpoint outside the recorded window
        }
        self.out.edges.push(DataflowEdge {
            producer,
            consumer: seq,
            deliver: avail,
            kind,
            occupancy,
        });
    }

    fn issue_blocked(&mut self, _cycle: u64, seq: u64, cause: IssueBlock) {
        if let Some(rec) = self.rec_mut(seq) {
            match cause {
                IssueBlock::Width => rec.blocked_width += 1,
                IssueBlock::OtbFull => rec.blocked_otb += 1,
                IssueBlock::RtbFull => rec.blocked_rtb += 1,
            }
        }
    }

    fn load_missed(&mut self, seq: u64) {
        if let Some(rec) = self.rec_mut(seq) {
            rec.load_miss = true;
        }
    }

    fn issued(&mut self, cycle: u64, seq: u64, _cluster: ClusterId, copy: CopyKind, done: u64) {
        if let Some(rec) = self.rec_mut(seq) {
            match copy {
                CopyKind::Master => {
                    rec.issue = Some(cycle);
                    rec.complete = Some(done);
                }
                CopyKind::Slave => rec.slave_issue = Some(cycle),
            }
        }
    }

    fn forwarded(
        &mut self,
        _cycle: u64,
        seq: u64,
        kind: TransferKind,
        phase: TransferPhase,
        cluster: ClusterId,
    ) {
        let c = cluster.index();
        let used = match kind {
            TransferKind::Operand => &mut self.otb_used[c],
            TransferKind::Result => &mut self.rtb_used[c],
        };
        match phase {
            TransferPhase::Alloc => *used += 1,
            TransferPhase::Release => *used = used.saturating_sub(1),
        }
        if let Some(rec) = self.rec_mut(seq) {
            let held = match kind {
                TransferKind::Operand => &mut rec.otb_held,
                TransferKind::Result => &mut rec.rtb_held,
            };
            *held = phase == TransferPhase::Alloc;
        }
    }

    fn completed(&mut self, cycle: u64, seq: u64, _cluster: ClusterId) {
        if let Some(rec) = self.rec_mut(seq) {
            rec.complete = Some(cycle);
        }
    }

    fn retired(&mut self, cycle: u64, seq: u64) {
        self.out.retired_total += 1;
        debug_assert_eq!(seq, self.base, "retire is in order");
        let Some(rec) = self.recs.pop_front() else { return };
        self.base = seq + 1;
        if !self.in_range(seq) {
            return;
        }
        self.out.ops.push(OpLifecycle {
            seq,
            fetch: rec.fetch,
            dispatch: rec.dispatch.unwrap_or(rec.fetch),
            issue: rec.issue.unwrap_or(cycle),
            complete: rec.complete.unwrap_or(cycle),
            retire: cycle,
            master: rec.master.unwrap_or(ClusterId::C0),
            slave: rec.slave,
            slave_issue: rec.slave_issue,
            replays: 0, // counted from flushed incarnations in finish()
            sched_inserted: rec.sched_inserted,
            slave_receives: rec.slave_receives,
            load_miss: rec.load_miss,
            dispatch_stall: rec.dispatch_stall,
            blocked_width: rec.blocked_width,
            blocked_otb: rec.blocked_otb,
            blocked_rtb: rec.blocked_rtb,
        });
    }

    fn replayed(&mut self, cycle: u64, from_seq: u64, _squashed: u64) {
        // Flush every incarnation at or past the squash point; the
        // front-end re-dispatches them with fresh records. Held
        // transfer-buffer entries were restored by the squash without
        // release hooks, so the occupancy counters adjust here.
        let keep = usize::try_from(from_seq.saturating_sub(self.base)).unwrap_or(usize::MAX);
        let keep = keep.min(self.recs.len());
        let (start, end, base) = (self.range_start, self.range_end, self.base);
        for (i, rec) in self.recs.drain(keep..).enumerate() {
            let seq = base + (keep + i) as u64;
            if rec.otb_held {
                if let Some(c) = rec.master.map(ClusterId::index) {
                    self.otb_used[c] = self.otb_used[c].saturating_sub(1);
                }
            }
            if rec.rtb_held {
                if let Some(c) = rec.slave.map(ClusterId::index) {
                    self.rtb_used[c] = self.rtb_used[c].saturating_sub(1);
                }
            }
            if seq >= start && seq < end {
                self.out.flushed.push(FlushedOp {
                    seq,
                    fetch: rec.fetch,
                    dispatch: rec.dispatch,
                    issue: rec.issue,
                    squash: cycle,
                    master: rec.master,
                });
            }
        }
        if from_seq <= self.base {
            self.base = from_seq;
        }
        // Deliveries into squashed consumers are stale; the surviving
        // producers will re-fire their lists for the new incarnations.
        self.out.edges.retain(|e| e.consumer < from_seq);
    }

    fn stalled(&mut self, cycle: u64, cause: StallCause) {
        self.last_stall = Some((cycle, cause));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Processor, ProcessorConfig};
    use mcl_isa::ArchReg;
    use mcl_trace::ProgramBuilder;

    fn cross_cluster_program() -> mcl_trace::Program<ArchReg> {
        // Alternating even/odd destinations: every add crosses
        // clusters, exercising forwards, transfer buffers, and dual
        // distribution.
        let mut b = ProgramBuilder::<ArchReg>::new("pipetrace");
        let (e, o) = (ArchReg::int(2), ArchReg::int(3));
        b.lda(e, 0);
        for _ in 0..24 {
            b.addq_imm(o, e, 1);
            b.addq_imm(e, o, 1);
        }
        b.ret(ArchReg::ZERO);
        b.finish().expect("valid program")
    }

    /// Deadlocks a one-entry operand transfer buffer so a replay
    /// exception must break the cycle (the shape of tests/replay.rs).
    fn deadlock_program() -> mcl_trace::Program<ArchReg> {
        let mut b = ProgramBuilder::<ArchReg>::new("pipetrace-replay");
        let (r2, r3, r4, r5, r6) =
            (ArchReg::int(2), ArchReg::int(3), ArchReg::int(4), ArchReg::int(5), ArchReg::int(6));
        b.lda(r3, 7);
        b.lda(r4, 9);
        b.lda(r5, 3);
        b.mulq(r5, r5, r5);
        b.mulq(r5, r5, r5);
        b.mulq(r5, r5, r5);
        b.addq(r2, r4, r5);
        b.addq(r6, r2, r3);
        b.finish().expect("valid program")
    }

    fn run_traced(
        program: &mcl_trace::Program<ArchReg>,
        cfg: ProcessorConfig,
        start: u64,
        end: u64,
    ) -> (PipeTrace, crate::stats::SimStats) {
        let plain = Processor::new(cfg.clone()).run_program(program).unwrap().stats;
        let (trace, _) = mcl_trace::vm::trace_program(program).unwrap();
        let mut probe = PipeTraceProbe::new(start, end);
        let observed = Processor::new(cfg).run_trace_observed(&trace, &mut probe).unwrap().stats;
        assert_eq!(observed, plain, "probe perturbed the simulation");
        (probe.finish(), observed)
    }

    fn traced(cfg: ProcessorConfig, start: u64, end: u64) -> (PipeTrace, crate::stats::SimStats) {
        run_traced(&cross_cluster_program(), cfg, start, end)
    }

    #[test]
    fn identity_holds_across_presets_and_probe_does_not_perturb() {
        for cfg in [
            ProcessorConfig::single_cluster_8way(),
            ProcessorConfig::dual_cluster_8way(),
            {
                // Tiny transfer buffers force replays and credit stalls
                // through the flush path.
                let mut tiny = ProcessorConfig::dual_cluster_8way();
                tiny.operand_buffer = 1;
                tiny.result_buffer = 1;
                tiny
            },
        ] {
            let (trace, stats) = traced(cfg, 0, u64::MAX);
            trace.check_identity(stats.retired).unwrap();
            assert_eq!(trace.ops.len() as u64, stats.retired);
        }
    }

    #[test]
    fn dual_cluster_run_records_inter_cluster_edges() {
        let (trace, stats) = traced(ProcessorConfig::dual_cluster_8way(), 0, u64::MAX);
        trace.check_identity(stats.retired).unwrap();
        assert!(
            !trace.edges.is_empty(),
            "alternating-cluster adds must cross clusters"
        );
        for e in &trace.edges {
            assert!(e.producer < e.consumer, "values flow forward in the trace");
        }
        let single = traced(ProcessorConfig::single_cluster_8way(), 0, u64::MAX).0;
        assert!(single.edges.is_empty(), "one cluster has no inter-cluster traffic");
    }

    #[test]
    fn range_clips_both_ends() {
        let (trace, stats) = traced(ProcessorConfig::dual_cluster_8way(), 3, 9);
        trace.check_identity(stats.retired).unwrap();
        assert_eq!(trace.ops.len(), 6);
        assert_eq!(trace.ops[0].seq, 3);
        // A range past the end of the run holds nothing.
        let (empty, stats) = traced(ProcessorConfig::dual_cluster_8way(), stats.retired + 5, u64::MAX);
        empty.check_identity(stats.retired).unwrap();
        assert!(empty.ops.is_empty() && empty.edges.is_empty());
    }

    #[test]
    fn replayed_incarnations_flush_and_count() {
        let mut tiny = ProcessorConfig::dual_cluster_8way();
        tiny.operand_buffer = 1;
        tiny.result_buffer = 1;
        let (trace, stats) = run_traced(&deadlock_program(), tiny, 0, u64::MAX);
        trace.check_identity(stats.retired).unwrap();
        assert!(stats.replays > 0, "tiny buffers must force replays");
        assert!(!trace.flushed.is_empty(), "replays must leave flushed incarnations");
        let replayed: u32 = trace.ops.iter().map(|o| o.replays).sum();
        let dispatched_flushes =
            trace.flushed.iter().filter(|f| f.dispatch.is_some()).count() as u32;
        assert_eq!(replayed, dispatched_flushes, "each dispatched flush is one replay");
        assert!(replayed > 0, "a squashed incarnation re-issued and retired once");
        // A flushed incarnation never enters the retired identity set:
        // ops hold exactly the retired stream, once each.
        assert_eq!(trace.ops.len() as u64, stats.retired);
    }

    #[test]
    fn identity_reports_violations_by_name() {
        let mut trace = PipeTrace {
            range_start: 0,
            range_end: u64::MAX,
            retired_total: 1,
            ..PipeTrace::default()
        };
        let err = trace.check_identity(2).unwrap_err();
        assert!(err.contains("1 retirements != 2"), "{err}");
        trace.retired_total = 2;
        let err = trace.check_identity(2).unwrap_err();
        assert!(err.contains("0 op(s) != 2 expected"), "{err}");
        let op = OpLifecycle {
            seq: 0,
            fetch: 5,
            dispatch: 4,
            issue: 4,
            complete: 4,
            retire: 4,
            master: ClusterId::C0,
            slave: None,
            slave_issue: None,
            replays: 0,
            sched_inserted: false,
            slave_receives: false,
            load_miss: false,
            dispatch_stall: None,
            blocked_width: 0,
            blocked_otb: 0,
            blocked_rtb: 0,
        };
        trace.ops = vec![op.clone(), OpLifecycle { seq: 1, fetch: 0, dispatch: 0, ..op }];
        let err = trace.check_identity(2).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
        trace.ops[0].fetch = 4;
        trace.edges.push(DataflowEdge {
            producer: 7,
            consumer: 0,
            deliver: 0,
            kind: TransferKind::Operand,
            occupancy: 0,
        });
        let err = trace.check_identity(2).unwrap_err();
        assert!(err.contains("producer 7 is not a recorded"), "{err}");
    }

    #[test]
    fn zero_op_trace_is_valid_and_empty() {
        let trace = PipeTraceProbe::new(0, u64::MAX).finish();
        trace.check_identity(0).unwrap();
        assert!(trace.ops.is_empty() && trace.edges.is_empty() && trace.flushed.is_empty());
    }
}
