//! Host-side engine phase profiling: where a microsecond of wall time
//! goes *inside the simulator* on each live cycle.
//!
//! The [`Probe`](super::Probe) layer observes the *simulated machine*;
//! this module observes the *simulator itself*. A [`HostProf`] is a
//! second simulator type parameter in the same zero-cost style —
//! [`NullHostProf`] sets [`HostProf::ENABLED`] to `false` and every
//! call site is guarded by `if H::ENABLED`, a monomorphization-time
//! constant, so the unprofiled engine compiles to exactly the code it
//! had before this module existed. Unlike probes, a [`HostProf`] does
//! **not** force single-stepping: the profiled run takes the real
//! event-engine path, fast-forward jumps included, because the whole
//! point is to time that path.
//!
//! [`PhaseProf`] charges host nanoseconds to [`HostPhase`]s by
//! *telescoping* monotonic-clock samples: one `Instant::now()` read
//! ends one phase and starts the next, so a cycle with N phase marks
//! costs N clock reads (not 2N) and — by construction — the per-phase
//! buckets sum *exactly* to the span between the first and last sample.
//! That is the hard identity [`HostProfReport::check_identity`]
//! enforces: `sum(phase_ns) == total_ns`, with only the profiler's own
//! entry/exit clock reads (bounded by [`HOSTPROF_SLOP_NS`]) between
//! `total_ns` and the independently measured `elapsed_ns`.

use std::time::Instant;

/// The engine phases host time is charged to, in per-cycle execution
/// order (the [`Loop`](HostPhase::Loop) bucket absorbs everything
/// between a cycle's last mark and the next cycle's first: progress
/// checking, watchdog polling, and loop overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// Completion/TimeQ drains at the top of the cycle: buffer-free
    /// credits and branch-resolution pops.
    TimeQ,
    /// In-order retirement.
    Retire,
    /// Suspended-slave wakeup and future-ready drains (operand
    /// delivery).
    Wakeup,
    /// The per-cluster issue passes.
    Issue,
    /// Fetch, rename, and in-order distribution.
    Dispatch,
    /// The architectural invariant checker (zero unless `--check` is
    /// active).
    Checker,
    /// Dead-cycle fast-forward bookkeeping (jump-target computation and
    /// span charging; zero under the ticked engine).
    FastForward,
    /// Everything else: progress check, watchdog poll, loop overhead,
    /// and the run's entry/exit tails.
    Loop,
}

impl HostPhase {
    /// Number of phases (array dimension for breakdowns).
    pub const COUNT: usize = 8;

    /// Every phase, in [`HostPhase::index`] order.
    pub const ALL: [HostPhase; HostPhase::COUNT] = [
        HostPhase::TimeQ,
        HostPhase::Retire,
        HostPhase::Wakeup,
        HostPhase::Issue,
        HostPhase::Dispatch,
        HostPhase::Checker,
        HostPhase::FastForward,
        HostPhase::Loop,
    ];

    /// Dense index for per-phase arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            HostPhase::TimeQ => 0,
            HostPhase::Retire => 1,
            HostPhase::Wakeup => 2,
            HostPhase::Issue => 3,
            HostPhase::Dispatch => 4,
            HostPhase::Checker => 5,
            HostPhase::FastForward => 6,
            HostPhase::Loop => 7,
        }
    }

    /// Stable machine-readable name (used as a JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::TimeQ => "timeq",
            HostPhase::Retire => "retire",
            HostPhase::Wakeup => "wakeup",
            HostPhase::Issue => "issue",
            HostPhase::Dispatch => "dispatch",
            HostPhase::Checker => "checker",
            HostPhase::FastForward => "fast_forward",
            HostPhase::Loop => "loop",
        }
    }
}

/// Host-phase profiling hook points. Every method has an empty default
/// body; call sites are gated on [`HostProf::ENABLED`] so the default
/// [`NullHostProf`] build carries no profiling code at all.
#[allow(unused_variables)]
pub trait HostProf {
    /// Monomorphization-time switch: when `false` (the
    /// [`NullHostProf`]), every hook site compiles out entirely.
    const ENABLED: bool = true;

    /// The run loop is about to start; resets the telescoping clock.
    fn begin(&mut self) {}

    /// The current phase ended *now*: charge the span since the last
    /// sample to `phase` and restart the clock.
    fn mark(&mut self, phase: HostPhase) {}

    /// One live (actually stepped) cycle finished.
    fn live_cycle(&mut self) {}

    /// The run loop exited; charges the tail to
    /// [`HostPhase::Loop`] and freezes the elapsed total.
    fn finish(&mut self) {}
}

/// The disabled profiler: all hook sites compile out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHostProf;

impl HostProf for NullHostProf {
    const ENABLED: bool = false;
}

/// Forwarding implementation so a profiled run can keep ownership of
/// its profiler (`sim.run()` borrows `&mut H`).
impl<H: HostProf + ?Sized> HostProf for &mut H {
    const ENABLED: bool = H::ENABLED;

    fn begin(&mut self) {
        (**self).begin();
    }

    fn mark(&mut self, phase: HostPhase) {
        (**self).mark(phase);
    }

    fn live_cycle(&mut self) {
        (**self).live_cycle();
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

/// Permitted slack between the telescoped phase total and the
/// independently measured elapsed wall time. The gap is exactly the
/// profiler's own entry/exit clock reads — nanoseconds on a quiet host
/// — but the final read can land after an OS preemption, so the stated
/// bound is generous: 5 ms.
pub const HOSTPROF_SLOP_NS: u64 = 5_000_000;

/// The batteries-included [`HostProf`]: telescoping per-phase
/// nanosecond buckets plus a live-cycle counter.
#[derive(Debug, Clone)]
pub struct PhaseProf {
    /// End of the previous phase (start of the current one).
    last: Instant,
    /// When [`HostProf::begin`] ran.
    start: Instant,
    phase_ns: [u64; HostPhase::COUNT],
    live_cycles: u64,
    elapsed_ns: u64,
}

impl Default for PhaseProf {
    fn default() -> PhaseProf {
        PhaseProf::new()
    }
}

impl PhaseProf {
    /// A fresh profiler (the clock restarts at [`HostProf::begin`]).
    #[must_use]
    pub fn new() -> PhaseProf {
        let now = Instant::now();
        PhaseProf {
            last: now,
            start: now,
            phase_ns: [0; HostPhase::COUNT],
            live_cycles: 0,
            elapsed_ns: 0,
        }
    }

    /// The finished report.
    #[must_use]
    pub fn report(&self, cycles: u64) -> HostProfReport {
        HostProfReport {
            phase_ns: self.phase_ns,
            live_cycles: self.live_cycles,
            cycles,
            elapsed_ns: self.elapsed_ns,
        }
    }
}

impl HostProf for PhaseProf {
    fn begin(&mut self) {
        let now = Instant::now();
        self.start = now;
        self.last = now;
    }

    #[inline]
    fn mark(&mut self, phase: HostPhase) {
        let now = Instant::now();
        self.phase_ns[phase.index()] +=
            now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
    }

    #[inline]
    fn live_cycle(&mut self) {
        self.live_cycles += 1;
    }

    fn finish(&mut self) {
        self.mark(HostPhase::Loop);
        self.elapsed_ns = self.start.elapsed().as_nanos() as u64;
    }
}

/// Per-phase host-time breakdown of one profiled run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostProfReport {
    /// Nanoseconds charged to each phase, indexed by
    /// [`HostPhase::index`].
    pub phase_ns: [u64; HostPhase::COUNT],
    /// Cycles the engine actually stepped (simulated cycles minus
    /// fast-forwarded ones).
    pub live_cycles: u64,
    /// Total simulated cycles of the run.
    pub cycles: u64,
    /// Independently measured wall time from [`HostProf::begin`] to
    /// [`HostProf::finish`] (one clock read past the last mark).
    pub elapsed_ns: u64,
}

impl HostProfReport {
    /// Sum of the per-phase buckets. By the telescoping construction
    /// this equals the span between the first and last clock sample
    /// exactly.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Mean host nanoseconds per live cycle.
    #[must_use]
    pub fn ns_per_live_cycle(&self) -> f64 {
        if self.live_cycles == 0 {
            0.0
        } else {
            self.total_ns() as f64 / self.live_cycles as f64
        }
    }

    /// The sum-to-elapsed identity: the telescoped phase total can
    /// never exceed the independently measured elapsed time, and can
    /// trail it only by the profiler's own entry/exit clock reads
    /// ([`HOSTPROF_SLOP_NS`]).
    ///
    /// # Errors
    ///
    /// A rendered description of the violated bound.
    pub fn check_identity(&self) -> Result<(), String> {
        let total = self.total_ns();
        if total > self.elapsed_ns {
            return Err(format!(
                "hostprof identity: phase total {total} ns exceeds elapsed {} ns",
                self.elapsed_ns
            ));
        }
        let gap = self.elapsed_ns - total;
        if gap > HOSTPROF_SLOP_NS {
            return Err(format!(
                "hostprof identity: elapsed {} ns minus phase total {total} ns \
                 leaves {gap} ns unattributed (slop {HOSTPROF_SLOP_NS} ns)",
                self.elapsed_ns
            ));
        }
        Ok(())
    }

    /// Merges another report into this one (phase-wise sums; elapsed
    /// times add, so the identity survives the merge).
    pub fn absorb(&mut self, other: &HostProfReport) {
        for (mine, theirs) in self.phase_ns.iter_mut().zip(other.phase_ns) {
            *mine += theirs;
        }
        self.live_cycles += other.live_cycles;
        self.cycles += other.cycles;
        self.elapsed_ns += other.elapsed_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_names_unique() {
        for (i, phase) in HostPhase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        let mut names: Vec<&str> = HostPhase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HostPhase::COUNT, "names are unique");
    }

    #[test]
    fn null_hostprof_is_disabled() {
        const { assert!(!NullHostProf::ENABLED) };
        const { assert!(!<&mut NullHostProf as HostProf>::ENABLED) };
        const { assert!(<&mut PhaseProf as HostProf>::ENABLED) };
    }

    #[test]
    fn telescoped_marks_satisfy_the_identity() {
        let mut prof = PhaseProf::new();
        prof.begin();
        for _ in 0..1000 {
            prof.mark(HostPhase::TimeQ);
            prof.mark(HostPhase::Retire);
            prof.mark(HostPhase::Issue);
            prof.mark(HostPhase::Dispatch);
            prof.live_cycle();
        }
        prof.finish();
        let report = prof.report(1000);
        assert_eq!(report.live_cycles, 1000);
        report.check_identity().expect("identity holds");
        assert!(report.total_ns() > 0, "marks charged time");
        assert!(report.total_ns() <= report.elapsed_ns);
        assert!(report.ns_per_live_cycle() > 0.0);
    }

    #[test]
    fn identity_rejects_overrun_and_unattributed_gaps() {
        let mut over = HostProfReport { elapsed_ns: 10, ..HostProfReport::default() };
        over.phase_ns[0] = 20;
        assert!(over.check_identity().unwrap_err().contains("exceeds elapsed"));
        let mut gap = HostProfReport {
            elapsed_ns: HOSTPROF_SLOP_NS + 100,
            ..HostProfReport::default()
        };
        gap.phase_ns[0] = 50;
        assert!(gap.check_identity().unwrap_err().contains("unattributed"));
    }

    #[test]
    fn absorb_sums_and_preserves_the_identity() {
        let mut a = HostProfReport {
            phase_ns: [10, 0, 0, 0, 0, 0, 0, 5],
            live_cycles: 3,
            cycles: 4,
            elapsed_ns: 16,
        };
        let b = HostProfReport {
            phase_ns: [1, 2, 0, 0, 0, 0, 0, 0],
            live_cycles: 2,
            cycles: 2,
            elapsed_ns: 3,
        };
        a.absorb(&b);
        assert_eq!(a.total_ns(), 18);
        assert_eq!(a.live_cycles, 5);
        assert_eq!(a.cycles, 6);
        assert_eq!(a.elapsed_ns, 19);
        a.check_identity().expect("sums stay within slop");
    }
}
