//! Bounded lifecycle event ring for post-mortem rendering.

use std::collections::VecDeque;

use mcl_isa::ClusterId;

use crate::events::{Event, EventKind, EventLog};

/// A bounded ring of the last K instruction lifecycle [`Event`]s.
///
/// Unlike the unbounded [`EventLog`] (which is opt-in and per-run), the
/// ring is always safe to leave on: once full, each push evicts the
/// oldest event. On a [`crate::SimError`] the surviving tail can be
/// rendered through [`crate::pipeview`] via [`EventRing::to_log`].
#[derive(Debug, Clone)]
pub struct EventRing {
    cap: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(1);
        EventRing { cap, buf: VecDeque::with_capacity(cap), dropped: 0 }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, cycle: u64, seq: u64, cluster: Option<ClusterId>, kind: EventKind) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event { cycle, seq, cluster, kind });
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Smallest and largest instruction sequence number retained.
    #[must_use]
    pub fn seq_range(&self) -> Option<(u64, u64)> {
        let mut it = self.buf.iter().map(|e| e.seq);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for seq in it {
            lo = lo.min(seq);
            hi = hi.max(seq);
        }
        Some((lo, hi))
    }

    /// Copies the retained tail into an [`EventLog`] for rendering.
    #[must_use]
    pub fn to_log(&self) -> EventLog {
        let mut log = EventLog::new();
        for e in &self.buf {
            log.push(e.cycle, e.seq, e.cluster, e.kind);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_tail() {
        let mut ring = EventRing::new(3);
        for seq in 0..5 {
            ring.push(seq, seq, None, EventKind::Retired);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(ring.seq_range(), Some((2, 4)));
        assert_eq!(ring.to_log().events().len(), 3);
    }

    #[test]
    fn ring_survives_many_full_wraparounds() {
        let cap = 4;
        let mut ring = EventRing::new(cap);
        let total = 10 * cap as u64 + 3; // several full wraps plus a partial one
        for seq in 0..total {
            ring.push(seq * 2, seq, None, EventKind::Retired);
        }
        assert_eq!(ring.len(), cap);
        assert_eq!(ring.dropped(), total - cap as u64);
        // After any number of wraps the ring holds exactly the newest
        // `cap` events, oldest first, with cycles intact.
        let expect: Vec<u64> = (total - cap as u64..total).collect();
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, expect);
        let cycles: Vec<u64> = ring.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, expect.iter().map(|s| s * 2).collect::<Vec<_>>());
        assert_eq!(ring.seq_range(), Some((total - cap as u64, total - 1)));
        assert_eq!(ring.to_log().events().len(), cap);
    }

    #[test]
    fn ring_at_exact_capacity_drops_nothing() {
        let mut ring = EventRing::new(3);
        for seq in 0..3 {
            ring.push(seq, seq, None, EventKind::Retired);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.seq_range(), Some((0, 2)));
        // One more push crosses the boundary: exactly one eviction.
        ring.push(3, 3, None, EventKind::Retired);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.seq_range(), Some((1, 3)));
    }

    #[test]
    fn empty_ring() {
        let ring = EventRing::new(0); // clamped to 1
        assert_eq!(ring.capacity(), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.seq_range(), None);
        assert!(ring.to_log().events().is_empty());
    }
}
