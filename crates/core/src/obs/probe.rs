//! The batteries-included probe behind `repro --obs`.

use std::collections::{HashMap, VecDeque};

use mcl_isa::ClusterId;

use crate::events::EventKind;
use crate::obs::{
    CopyKind, CycleSnapshot, EventRing, Histogram, IntervalSampler, Probe, Sample, StallCause,
    TransferKind, TransferPhase,
};

/// Configuration for [`ObsProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Cycles per [`Sample`] (clamped to at least 1).
    pub sample_interval: u64,
    /// Lifecycle events retained in the ring (clamped to at least 1).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig { sample_interval: 1024, ring_capacity: 1024 }
    }
}

/// Per-instruction dispatch/issue/completion cycles, tracked in window
/// order for latency attribution.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    dispatch: u64,
    done: Option<u64>,
}

/// A [`Probe`] combining an [`IntervalSampler`] time series, latency
/// [`Histogram`]s, and a bounded [`EventRing`].
///
/// Latencies are measured on the master copy (the copy that computes):
/// dispatch→issue, issue→complete, complete→retire, and the residency
/// of operand/result transfer-buffer entries. Instructions squashed by
/// a replay drop out of latency tracking; their re-dispatched
/// incarnation is measured fresh.
#[derive(Debug, Clone)]
pub struct ObsProbe {
    sampler: IntervalSampler,
    dispatch_to_issue: Histogram,
    issue_to_complete: Histogram,
    complete_to_retire: Histogram,
    otb_residency: Histogram,
    rtb_residency: Histogram,
    ring: EventRing,
    inflight: VecDeque<Inflight>,
    inflight_base: u64,
    otb_alloc: HashMap<u64, u64>,
    rtb_alloc: HashMap<u64, u64>,
    last_cycle: u64,
}

impl ObsProbe {
    /// A probe with the given configuration.
    #[must_use]
    pub fn new(config: ObsConfig) -> ObsProbe {
        ObsProbe {
            sampler: IntervalSampler::new(config.sample_interval),
            dispatch_to_issue: Histogram::new(),
            issue_to_complete: Histogram::new(),
            complete_to_retire: Histogram::new(),
            otb_residency: Histogram::new(),
            rtb_residency: Histogram::new(),
            ring: EventRing::new(config.ring_capacity),
            inflight: VecDeque::new(),
            inflight_base: 0,
            otb_alloc: HashMap::new(),
            rtb_alloc: HashMap::new(),
            last_cycle: 0,
        }
    }

    /// Flushes the trailing partial sampling interval. Call once after
    /// the run (successful or not); further hook calls are undefined
    /// only in the sense that they start a new partial interval.
    pub fn finish(&mut self) {
        self.sampler.finish();
    }

    /// The interval time series.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        self.sampler.samples()
    }

    /// The configured sampling interval.
    #[must_use]
    pub fn sample_interval(&self) -> u64 {
        self.sampler.interval()
    }

    /// Dispatch→issue latency of master copies.
    #[must_use]
    pub fn dispatch_to_issue(&self) -> &Histogram {
        &self.dispatch_to_issue
    }

    /// Issue→completion latency of master copies.
    #[must_use]
    pub fn issue_to_complete(&self) -> &Histogram {
        &self.issue_to_complete
    }

    /// Completion→retire latency.
    #[must_use]
    pub fn complete_to_retire(&self) -> &Histogram {
        &self.complete_to_retire
    }

    /// Operand-transfer-buffer entry residency.
    #[must_use]
    pub fn otb_residency(&self) -> &Histogram {
        &self.otb_residency
    }

    /// Result-transfer-buffer entry residency.
    #[must_use]
    pub fn rtb_residency(&self) -> &Histogram {
        &self.rtb_residency
    }

    /// The histograms as `(stable name, histogram)` pairs, for export.
    #[must_use]
    pub fn histograms(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("dispatch_to_issue", &self.dispatch_to_issue),
            ("issue_to_complete", &self.issue_to_complete),
            ("complete_to_retire", &self.complete_to_retire),
            ("otb_residency", &self.otb_residency),
            ("rtb_residency", &self.rtb_residency),
        ]
    }

    /// The lifecycle event ring.
    #[must_use]
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Last cycle seen by [`Probe::cycle_end`].
    #[must_use]
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    fn inflight_at(&mut self, seq: u64) -> Option<&mut Inflight> {
        let idx = seq.checked_sub(self.inflight_base)?;
        self.inflight.get_mut(usize::try_from(idx).ok()?)
    }
}

impl Probe for ObsProbe {
    fn dispatched(&mut self, cycle: u64, seq: u64, master: ClusterId, slave: Option<ClusterId>) {
        self.sampler.on_dispatch();
        self.ring.push(cycle, seq, Some(master), EventKind::Distributed);
        if let Some(s) = slave {
            self.ring.push(cycle, seq, Some(s), EventKind::Distributed);
        }
        if self.inflight.is_empty() {
            self.inflight_base = seq;
        }
        debug_assert_eq!(seq, self.inflight_base + self.inflight.len() as u64);
        self.inflight.push_back(Inflight { dispatch: cycle, done: None });
    }

    fn issued(&mut self, cycle: u64, seq: u64, cluster: ClusterId, copy: CopyKind, done: u64) {
        self.sampler.on_issue();
        match copy {
            CopyKind::Master => {
                self.ring.push(cycle, seq, Some(cluster), EventKind::MasterIssued);
                if let Some(entry) = self.inflight_at(seq) {
                    entry.done = Some(done);
                    let dispatch = entry.dispatch;
                    self.dispatch_to_issue.record(cycle.saturating_sub(dispatch));
                    self.issue_to_complete.record(done.saturating_sub(cycle));
                }
            }
            CopyKind::Slave => {
                self.ring.push(cycle, seq, Some(cluster), EventKind::SlaveIssued);
            }
        }
    }

    fn forwarded(
        &mut self,
        cycle: u64,
        seq: u64,
        kind: TransferKind,
        phase: TransferPhase,
        _cluster: ClusterId,
    ) {
        let (alloc_map, residency) = match kind {
            TransferKind::Operand => (&mut self.otb_alloc, &mut self.otb_residency),
            TransferKind::Result => (&mut self.rtb_alloc, &mut self.rtb_residency),
        };
        match phase {
            TransferPhase::Alloc => {
                alloc_map.insert(seq, cycle);
            }
            TransferPhase::Release => {
                if let Some(alloc) = alloc_map.remove(&seq) {
                    residency.record(cycle.saturating_sub(alloc));
                }
            }
        }
    }

    fn completed(&mut self, cycle: u64, seq: u64, cluster: ClusterId) {
        self.ring.push(cycle, seq, Some(cluster), EventKind::ExecDone);
    }

    fn retired(&mut self, cycle: u64, seq: u64) {
        self.sampler.on_retire();
        self.ring.push(cycle, seq, None, EventKind::Retired);
        debug_assert_eq!(seq, self.inflight_base);
        if let Some(entry) = self.inflight.pop_front() {
            self.inflight_base += 1;
            if let Some(done) = entry.done {
                self.complete_to_retire.record(cycle.saturating_sub(done));
            }
        }
        // Buffer entries always release before retirement; drop any
        // residue so the maps stay bounded by the window size.
        self.otb_alloc.remove(&seq);
        self.rtb_alloc.remove(&seq);
    }

    fn replayed(&mut self, cycle: u64, from_seq: u64, _squashed: u64) {
        self.sampler.on_replay();
        self.ring.push(cycle, from_seq, None, EventKind::ReplaySquashed);
        if from_seq <= self.inflight_base {
            self.inflight.clear();
        } else {
            let keep = usize::try_from(from_seq - self.inflight_base).unwrap_or(usize::MAX);
            self.inflight.truncate(keep);
        }
        // Squashed holders' buffer entries free without a release hook.
        self.otb_alloc.retain(|&seq, _| seq < from_seq);
        self.rtb_alloc.retain(|&seq, _| seq < from_seq);
    }

    fn stalled(&mut self, _cycle: u64, cause: StallCause) {
        self.sampler.on_stall(cause);
    }

    fn cycle_end(&mut self, snap: &CycleSnapshot) {
        self.last_cycle = snap.cycle;
        self.sampler.on_cycle_end(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: ClusterId = ClusterId::C0;

    #[test]
    fn lifecycle_latencies_feed_the_histograms() {
        let mut p = ObsProbe::new(ObsConfig { sample_interval: 4, ring_capacity: 16 });
        p.dispatched(0, 0, C0, None);
        p.issued(2, 0, C0, CopyKind::Master, 5);
        p.completed(5, 0, C0);
        p.retired(7, 0);
        assert_eq!(p.dispatch_to_issue().count(), 1);
        assert_eq!(p.dispatch_to_issue().max(), Some(2));
        assert_eq!(p.issue_to_complete().max(), Some(3));
        assert_eq!(p.complete_to_retire().max(), Some(2));
        assert_eq!(p.ring().len(), 4);
    }

    #[test]
    fn transfer_residency_pairs_alloc_with_release() {
        let mut p = ObsProbe::new(ObsConfig::default());
        p.forwarded(3, 9, TransferKind::Operand, TransferPhase::Alloc, C0);
        p.forwarded(8, 9, TransferKind::Operand, TransferPhase::Release, C0);
        // Release with no matching alloc is ignored.
        p.forwarded(9, 10, TransferKind::Result, TransferPhase::Release, C0);
        assert_eq!(p.otb_residency().count(), 1);
        assert_eq!(p.otb_residency().max(), Some(5));
        assert_eq!(p.rtb_residency().count(), 0);
    }

    #[test]
    fn replay_drops_squashed_instructions_from_tracking() {
        let mut p = ObsProbe::new(ObsConfig::default());
        for seq in 0..4 {
            p.dispatched(seq, seq, C0, None);
        }
        p.forwarded(4, 2, TransferKind::Result, TransferPhase::Alloc, C0);
        p.replayed(5, 2, 2);
        // Seq 2 re-dispatches and is measured fresh.
        p.dispatched(10, 2, C0, None);
        p.issued(11, 2, C0, CopyKind::Master, 12);
        assert_eq!(p.dispatch_to_issue().max(), Some(1));
        // The squashed alloc must not pair with a later release.
        p.forwarded(12, 2, TransferKind::Result, TransferPhase::Alloc, C0);
        p.forwarded(13, 2, TransferKind::Result, TransferPhase::Release, C0);
        assert_eq!(p.rtb_residency().max(), Some(1));
    }
}
