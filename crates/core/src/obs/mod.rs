//! Cycle-sampled observability: probe hook points, interval sampling,
//! latency histograms, and a bounded lifecycle event ring.
//!
//! The simulator is generic over a [`Probe`] that it calls at fixed hook
//! points (dispatch, issue, forward, complete, retire, replay, and
//! per-cycle stall attribution). The default [`NullProbe`] sets
//! [`Probe::ENABLED`] to `false`; every hook site is guarded by
//! `if P::ENABLED`, a monomorphization-time constant, so the
//! uninstrumented simulator compiles to exactly the code it had before
//! this module existed — zero overhead when off, and byte-identical
//! statistics when on (probes observe, never perturb).
//!
//! [`ObsProbe`] is the batteries-included implementation behind the
//! `repro --obs` flag: an [`IntervalSampler`] time series, log2-bucketed
//! [`Histogram`]s of pipeline latencies, and an [`EventRing`] holding
//! the last K lifecycle events for post-mortem rendering through
//! [`crate::pipeview`].

pub mod critpath;
mod histogram;
pub mod hostprof;
pub mod pipetrace;
mod probe;
mod ring;
mod sampler;

pub use critpath::{CritAttribution, CritCause, CritPathProbe};
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use hostprof::{HostPhase, HostProf, HostProfReport, NullHostProf, PhaseProf};
pub use pipetrace::{DataflowEdge, FlushedOp, OpLifecycle, PipeTrace, PipeTraceProbe};
pub use probe::{ObsConfig, ObsProbe};
pub use ring::EventRing;
pub use sampler::{IntervalSampler, Sample};

use mcl_isa::ClusterId;

/// Which copy of a dual-distributed instruction issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyKind {
    /// The master copy (computes the result).
    Master,
    /// The slave copy (forwards an operand or receives the result).
    Slave,
}

/// Which transfer buffer a forwarding hook refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Operand transfer buffer (slave forwards an operand to the master).
    Operand,
    /// Result transfer buffer (master forwards its result to the slave).
    Result,
}

/// Whether a transfer-buffer hook marks entry allocation or release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferPhase {
    /// An entry was allocated at the hook cycle.
    Alloc,
    /// The entry becomes reusable at the hook cycle.
    Release,
}

/// The cause a whole cycle was charged to when nothing dispatched.
///
/// Mirrors the [`crate::stats::SimStats`] stall counters one-to-one,
/// except that `stall_branch` splits into [`StallCause::BranchWait`]
/// (fetch blocked behind an unresolved mispredicted branch) and
/// [`StallCause::BranchRedirect`] (the post-resolution redirect cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Instruction-cache miss.
    Icache,
    /// Unresolved mispredicted branch blocks fetch.
    BranchWait,
    /// Redirect cycle after a mispredicted branch resolved.
    BranchRedirect,
    /// No dispatch-queue entry in some required cluster.
    DispatchQueue,
    /// No physical register in some required cluster.
    Registers,
    /// Replay-exception recovery penalty.
    Replay,
    /// Dynamic-reassignment drain or state-movement penalty.
    Reassign,
}

impl StallCause {
    /// Number of stall causes (array dimension for breakdowns).
    pub const COUNT: usize = 7;

    /// Every cause, in [`StallCause::index`] order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::Icache,
        StallCause::BranchWait,
        StallCause::BranchRedirect,
        StallCause::DispatchQueue,
        StallCause::Registers,
        StallCause::Replay,
        StallCause::Reassign,
    ];

    /// Dense index for per-cause arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StallCause::Icache => 0,
            StallCause::BranchWait => 1,
            StallCause::BranchRedirect => 2,
            StallCause::DispatchQueue => 3,
            StallCause::Registers => 4,
            StallCause::Replay => 5,
            StallCause::Reassign => 6,
        }
    }

    /// Stable machine-readable name (used as a JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Icache => "icache",
            StallCause::BranchWait => "branch_wait",
            StallCause::BranchRedirect => "branch_redirect",
            StallCause::DispatchQueue => "dispatch_queue",
            StallCause::Registers => "registers",
            StallCause::Replay => "replay",
            StallCause::Reassign => "reassign",
        }
    }
}

/// Where a delivered master-copy operand came from (passed to
/// [`Probe::operand_delivered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverySource {
    /// The producer's master copy completed in a cluster the consumer
    /// reads from directly (no inter-cluster transfer).
    Completion,
    /// The producer's slave copy wrote its register copy — the value
    /// crossed clusters through the result transfer buffer.
    SlaveWrite,
    /// The consumer's own slave copy forwarded the operand through the
    /// operand transfer buffer (Section 2.1 scenario two).
    OperandForward,
}

/// Why an otherwise-ready instruction could not issue this cycle
/// (passed to [`Probe::issue_blocked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueBlock {
    /// Issue-slot budget for the op's class was exhausted (including a
    /// busy unpipelined divider).
    Width,
    /// A dual-distributed slave could not forward an operand: the
    /// master cluster's operand transfer buffer is full.
    OtbFull,
    /// A dual-distributed master could not issue: the slave cluster's
    /// result transfer buffer is full.
    RtbFull,
}

/// End-of-cycle occupancy snapshot passed to [`Probe::cycle_end`].
///
/// `*_used` counts are capacity minus the free count at the end of the
/// cycle; register free counts are signed because the free lists are
/// (they may transiently owe entries under fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleSnapshot {
    /// The cycle that just finished.
    pub cycle: u64,
    /// In-flight instructions in the window.
    pub window: u32,
    /// Occupied dispatch-queue entries, per cluster.
    pub dq_used: [u32; 2],
    /// Occupied operand-transfer-buffer entries, per cluster.
    pub otb_used: [u32; 2],
    /// Occupied result-transfer-buffer entries, per cluster.
    pub rtb_used: [u32; 2],
    /// Free integer physical registers, per cluster.
    pub int_free: [i64; 2],
    /// Free floating-point physical registers, per cluster.
    pub fp_free: [i64; 2],
}

/// Simulator hook points.
///
/// Every method has an empty default body; implement only what you
/// need. All hooks are called *after* the simulator has updated its own
/// state for the event, and never influence simulation — a probe sees,
/// it does not touch. Cycles passed to hooks may lie in the future
/// relative to the current cycle ([`Probe::completed`] reports the
/// completion cycle at issue time, the way the event log does).
#[allow(unused_variables)]
pub trait Probe {
    /// Monomorphization-time switch: when `false` (the [`NullProbe`]),
    /// every hook site compiles out entirely.
    const ENABLED: bool = true;

    /// The instruction cache delivered the line holding `seq` this
    /// cycle; the op is in the fetch group but may still stall at
    /// dispatch (queue or register pressure). Fires again on every
    /// retry cycle of a stalled group — a lifecycle recorder keeps the
    /// first firing per incarnation as the fetch cycle.
    fn fetched(&mut self, cycle: u64, seq: u64) {}

    /// An instruction entered the window (master and optional slave).
    fn dispatched(&mut self, cycle: u64, seq: u64, master: ClusterId, slave: Option<ClusterId>) {}

    /// Dispatch-time metadata for the op that just [`Probe::dispatched`]:
    /// scheduler provenance, whether the master's result must cross to a
    /// slave cluster, the earliest cycle its already-known operands
    /// allow issue (`ready_floor`), and whether *all* operands were
    /// known at dispatch (no outstanding producers).
    fn op_dispatch_meta(
        &mut self,
        seq: u64,
        sched_inserted: bool,
        slave_receives: bool,
        ready_floor: u64,
        ready_known: bool,
    ) {
    }

    /// Rename resolved a forwarded operand of `seq` (dispatch time):
    /// the slave copy will read the value `producer` wrote. Fires once
    /// per forwarded source with an in-flight producer, before
    /// [`Probe::dispatched`] for `seq`; [`Probe::operand_delivered`]
    /// with [`DeliverySource::OperandForward`] carries no producer, so
    /// edge builders resolve it from this hook.
    fn forwarded_operand_source(&mut self, seq: u64, producer: u64) {}

    /// An outstanding master-copy operand of `seq` was delivered; the
    /// value becomes usable at cycle `avail`. `source` says how the
    /// value reached the master's cluster and `producer` names the
    /// in-flight op whose completion or register write triggered the
    /// delivery (`None` for [`DeliverySource::OperandForward`] — see
    /// [`Probe::forwarded_operand_source`]).
    fn operand_delivered(
        &mut self,
        seq: u64,
        avail: u64,
        source: DeliverySource,
        producer: Option<u64>,
    ) {
    }

    /// A ready instruction was scanned by the issue logic this cycle
    /// but could not issue, for `cause`.
    fn issue_blocked(&mut self, cycle: u64, seq: u64, cause: IssueBlock) {}

    /// The load at `seq` missed in the D-cache (reported at issue time).
    fn load_missed(&mut self, seq: u64) {}

    /// A copy issued in `cluster`; `done` is the cycle its effect
    /// becomes visible (master completion, operand/result write).
    fn issued(&mut self, cycle: u64, seq: u64, cluster: ClusterId, copy: CopyKind, done: u64) {}

    /// A transfer-buffer entry was allocated or released in `cluster`.
    fn forwarded(
        &mut self,
        cycle: u64,
        seq: u64,
        kind: TransferKind,
        phase: TransferPhase,
        cluster: ClusterId,
    ) {
    }

    /// The master copy's completion cycle became known (reported at
    /// issue time; `cycle` is the completion cycle itself).
    fn completed(&mut self, cycle: u64, seq: u64, cluster: ClusterId) {}

    /// An instruction retired.
    fn retired(&mut self, cycle: u64, seq: u64) {}

    /// A replay exception squashed `squashed` instructions, restarting
    /// dispatch from `from_seq`.
    fn replayed(&mut self, cycle: u64, from_seq: u64, squashed: u64) {}

    /// A whole cycle passed with no dispatch, charged to `cause`.
    fn stalled(&mut self, cycle: u64, cause: StallCause) {}

    /// A simulated cycle finished; `snap` is the end-of-cycle occupancy.
    fn cycle_end(&mut self, snap: &CycleSnapshot) {}
}

/// The disabled probe: all hook sites compile out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

/// Forwarding implementation so an observed run can keep ownership of
/// its probe (`sim.run()` borrows `&mut P`).
impl<P: Probe + ?Sized> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    fn fetched(&mut self, cycle: u64, seq: u64) {
        (**self).fetched(cycle, seq);
    }

    fn dispatched(&mut self, cycle: u64, seq: u64, master: ClusterId, slave: Option<ClusterId>) {
        (**self).dispatched(cycle, seq, master, slave);
    }

    fn op_dispatch_meta(
        &mut self,
        seq: u64,
        sched_inserted: bool,
        slave_receives: bool,
        ready_floor: u64,
        ready_known: bool,
    ) {
        (**self).op_dispatch_meta(seq, sched_inserted, slave_receives, ready_floor, ready_known);
    }

    fn forwarded_operand_source(&mut self, seq: u64, producer: u64) {
        (**self).forwarded_operand_source(seq, producer);
    }

    fn operand_delivered(
        &mut self,
        seq: u64,
        avail: u64,
        source: DeliverySource,
        producer: Option<u64>,
    ) {
        (**self).operand_delivered(seq, avail, source, producer);
    }

    fn issue_blocked(&mut self, cycle: u64, seq: u64, cause: IssueBlock) {
        (**self).issue_blocked(cycle, seq, cause);
    }

    fn load_missed(&mut self, seq: u64) {
        (**self).load_missed(seq);
    }

    fn issued(&mut self, cycle: u64, seq: u64, cluster: ClusterId, copy: CopyKind, done: u64) {
        (**self).issued(cycle, seq, cluster, copy, done);
    }

    fn forwarded(
        &mut self,
        cycle: u64,
        seq: u64,
        kind: TransferKind,
        phase: TransferPhase,
        cluster: ClusterId,
    ) {
        (**self).forwarded(cycle, seq, kind, phase, cluster);
    }

    fn completed(&mut self, cycle: u64, seq: u64, cluster: ClusterId) {
        (**self).completed(cycle, seq, cluster);
    }

    fn retired(&mut self, cycle: u64, seq: u64) {
        (**self).retired(cycle, seq);
    }

    fn replayed(&mut self, cycle: u64, from_seq: u64, squashed: u64) {
        (**self).replayed(cycle, from_seq, squashed);
    }

    fn stalled(&mut self, cycle: u64, cause: StallCause) {
        (**self).stalled(cycle, cause);
    }

    fn cycle_end(&mut self, snap: &CycleSnapshot) {
        (**self).cycle_end(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_cause_indices_are_dense_and_stable() {
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        let mut names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StallCause::COUNT, "names are unique");
    }

    #[test]
    fn null_probe_is_disabled() {
        const { assert!(!NullProbe::ENABLED) };
        const { assert!(!<&mut NullProbe as Probe>::ENABLED) };
        const { assert!(<&mut ObsProbe as Probe>::ENABLED) };
    }
}
