//! Log2-bucketed, mergeable latency histograms.

/// Bucket count: one bucket for zero plus one per bit of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i >= 1` covers the half-open
/// range `[2^(i-1), 2^i)`. Histograms merge associatively and
/// commutatively ([`Histogram::merge`]), so per-shard instances can be
/// combined in any order without changing the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The `[lower, upper)` range of bucket `i` (`upper` is `None` for
    /// the last bucket, whose upper bound exceeds `u64`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket out of range");
        match i {
            0 => (0, Some(1)),
            64 => (1 << 63, None),
            _ => (1 << (i - 1), Some(1 << i)),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Non-empty buckets as `(index, lower, upper, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64, Option<u64>, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| {
            let (lo, hi) = Histogram::bucket_bounds(i);
            (i, lo, hi, n)
        })
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        for k in 0..64 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k + 1, "2^{k}");
            if v > 1 {
                assert_eq!(Histogram::bucket_index(v - 1), k, "2^{k} - 1");
            }
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_cover_each_bucket() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            if let Some(hi) = hi {
                assert_eq!(Histogram::bucket_index(hi - 1), i);
                assert_eq!(Histogram::bucket_index(hi), i + 1);
            }
        }
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn record_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        for v in [3, 0, 12, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(12));
        assert_eq!(h.mean(), Some(5.0));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        // Deterministic pseudo-random-ish values spread across buckets.
        let mut v: u64 = 7;
        for (i, part) in parts.iter_mut().enumerate() {
            for _ in 0..50 {
                v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i as u64 + 1);
                part.record(v >> (v % 60));
            }
        }
        // (a + b) + c
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a + (b + c), folded in the other order
        let mut bc = parts[2];
        bc.merge(&parts[1]);
        let mut right = Histogram::new();
        right.merge(&bc);
        right.merge(&parts[0]);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_combines_saturated_top_buckets() {
        // Both operands carry samples in the open-ended top bucket
        // (values >= 2^63) and sums large enough that the merged sum
        // saturates rather than wrapping.
        let mut a = Histogram::new();
        a.record(u64::MAX);
        a.record(1 << 63);
        a.record(5);
        let mut b = Histogram::new();
        b.record(u64::MAX - 1);
        b.record(u64::MAX);
        assert_eq!(a.buckets()[64], 2);
        assert_eq!(b.buckets()[64], 2);
        assert_eq!(a.sum(), u64::MAX); // already saturated by record()

        a.merge(&b);
        assert_eq!(a.buckets()[64], 4);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), u64::MAX); // saturating, not wrapping
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(u64::MAX));
        let (lo, hi) = Histogram::bucket_bounds(64);
        assert_eq!(lo, 1 << 63);
        assert_eq!(hi, None);

        // Merging the saturated histogram into an empty one preserves
        // the top bucket and the saturated sum.
        let mut fresh = Histogram::new();
        fresh.merge(&a);
        assert_eq!(fresh.buckets()[64], 4);
        assert_eq!(fresh.sum(), u64::MAX);
        assert_eq!(fresh, a);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(9);
        h.record(0);
        let before = h;
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
