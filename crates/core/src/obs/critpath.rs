//! Critical-path cycle-loss attribution.
//!
//! [`CritPathProbe`] maintains a last-arrival dependence record per
//! in-flight instruction: which edge determined the cycle each op could
//! finally issue — operand data dependence, an inter-cluster operand
//! forward, transfer-buffer credit, issue-width contention — plus its
//! dispatch, completion, and D-cache behaviour. At every retire the
//! probe walks the record of the instruction *gating* retirement (the
//! oldest op of the cycle's retire batch) and charges each cycle of the
//! retire gap to exactly one [`CritCause`].
//!
//! The attribution is **exact by construction**: retire cycles are
//! monotone, every gap `(previous retire, this retire]` is charged
//! once, and the post-trace drain tail is charged to
//! [`CritCause::Drain`] — so the per-cause cycles sum to the run's
//! total cycle count. [`CritAttribution::check_identity`] enforces this
//! the way [`crate::stats::SimStats::check_stall_identity`] enforces
//! the coarse stall identity, and `repro selftest` demands it for every
//! Table 2 cell.
//!
//! Cycles *before* the gating op dispatched are charged per-cycle to
//! the front-end cause the simulator recorded through
//! [`Probe::stalled`] (or [`CritCause::FrontBandwidth`] when dispatch
//! was active but had not reached the op yet). Cycles where the gating
//! op was scheduler-inserted spill code are charged wholesale to
//! [`CritCause::SchedSpill`], attributing the cost of cross-cluster
//! live-range splits to the scheduling pass that created them.

use std::collections::VecDeque;

use mcl_isa::ClusterId;

use super::{CopyKind, DeliverySource, IssueBlock, Probe, StallCause};

/// Where a cycle of execution time went, at retire-gap resolution.
///
/// The first group is resolved from the gating op's own dependence
/// record; the `Front*` causes mirror the simulator's front-end stall
/// attribution for cycles before the gating op entered the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CritCause {
    /// The gating op was spill code inserted by the scheduler for a
    /// cross-cluster live-range split.
    SchedSpill,
    /// Waiting on a same-cluster operand (true data dependence).
    DataDep,
    /// Waiting on an operand forwarded across clusters, or (for a
    /// result-forwarding op) on the inter-cluster result transfer
    /// between completion and retirement.
    InterClusterForward,
    /// The forwarding slave copy stalled on operand-transfer-buffer
    /// credit before the operand could cross.
    OtbCredit,
    /// The master copy stalled on result-transfer-buffer credit in the
    /// slave's cluster.
    RtbCredit,
    /// Ready, but issue-slot budget (or the unpipelined divider) was
    /// exhausted.
    IssueWidth,
    /// Execution latency of a load that missed in the D-cache.
    DcacheMiss,
    /// Ordinary execution latency (issue to completion, D-cache hits
    /// included).
    Execution,
    /// Complete but waiting for older instructions or retire bandwidth.
    RetireWait,
    /// Front end stalled on an instruction-cache miss.
    FrontIcache,
    /// Front end stalled behind a mispredicted branch (wait or
    /// redirect).
    FrontBranch,
    /// Front end stalled on dispatch-queue space.
    FrontDq,
    /// Front end stalled on physical registers.
    FrontRegs,
    /// Front end stalled in replay-exception recovery.
    FrontReplay,
    /// Front end stalled draining for a dynamic reassignment.
    FrontReassign,
    /// Front end was dispatching, but had not reached the gating op yet
    /// (fetch/dispatch bandwidth).
    FrontBandwidth,
    /// Post-trace drain tail after the last retirement.
    Drain,
}

impl CritCause {
    /// Number of causes (array dimension for breakdowns).
    pub const COUNT: usize = 17;

    /// Every cause, in [`CritCause::index`] order.
    pub const ALL: [CritCause; CritCause::COUNT] = [
        CritCause::SchedSpill,
        CritCause::DataDep,
        CritCause::InterClusterForward,
        CritCause::OtbCredit,
        CritCause::RtbCredit,
        CritCause::IssueWidth,
        CritCause::DcacheMiss,
        CritCause::Execution,
        CritCause::RetireWait,
        CritCause::FrontIcache,
        CritCause::FrontBranch,
        CritCause::FrontDq,
        CritCause::FrontRegs,
        CritCause::FrontReplay,
        CritCause::FrontReassign,
        CritCause::FrontBandwidth,
        CritCause::Drain,
    ];

    /// Dense index for per-cause arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CritCause::SchedSpill => 0,
            CritCause::DataDep => 1,
            CritCause::InterClusterForward => 2,
            CritCause::OtbCredit => 3,
            CritCause::RtbCredit => 4,
            CritCause::IssueWidth => 5,
            CritCause::DcacheMiss => 6,
            CritCause::Execution => 7,
            CritCause::RetireWait => 8,
            CritCause::FrontIcache => 9,
            CritCause::FrontBranch => 10,
            CritCause::FrontDq => 11,
            CritCause::FrontRegs => 12,
            CritCause::FrontReplay => 13,
            CritCause::FrontReassign => 14,
            CritCause::FrontBandwidth => 15,
            CritCause::Drain => 16,
        }
    }

    /// Stable machine-readable name (used as a JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CritCause::SchedSpill => "sched_spill",
            CritCause::DataDep => "data_dep",
            CritCause::InterClusterForward => "inter_cluster_forward",
            CritCause::OtbCredit => "otb_credit",
            CritCause::RtbCredit => "rtb_credit",
            CritCause::IssueWidth => "issue_width",
            CritCause::DcacheMiss => "dcache_miss",
            CritCause::Execution => "execution",
            CritCause::RetireWait => "retire_wait",
            CritCause::FrontIcache => "front_icache",
            CritCause::FrontBranch => "front_branch",
            CritCause::FrontDq => "front_dispatch_queue",
            CritCause::FrontRegs => "front_registers",
            CritCause::FrontReplay => "front_replay",
            CritCause::FrontReassign => "front_reassign",
            CritCause::FrontBandwidth => "front_bandwidth",
            CritCause::Drain => "drain",
        }
    }

    fn from_stall(cause: StallCause) -> CritCause {
        match cause {
            StallCause::Icache => CritCause::FrontIcache,
            StallCause::BranchWait | StallCause::BranchRedirect => CritCause::FrontBranch,
            StallCause::DispatchQueue => CritCause::FrontDq,
            StallCause::Registers => CritCause::FrontRegs,
            StallCause::Replay => CritCause::FrontReplay,
            StallCause::Reassign => CritCause::FrontReassign,
        }
    }
}

/// The exact per-cause cycle breakdown of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritAttribution {
    /// Cycles charged to each cause, indexed by [`CritCause::index`].
    pub by_cause: [u64; CritCause::COUNT],
    /// Instructions retired (the walk's gating events).
    pub retired: u64,
}

impl CritAttribution {
    /// Cycles charged to `cause`.
    #[must_use]
    pub fn cycles(&self, cause: CritCause) -> u64 {
        self.by_cause[cause.index()]
    }

    /// Total cycles attributed, across all causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_cause.iter().sum()
    }

    /// Iterates `(cause, cycles)` in stable [`CritCause::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CritCause, u64)> + '_ {
        CritCause::ALL.iter().map(|&c| (c, self.by_cause[c.index()]))
    }

    /// Verifies the attribution identity: the per-cause cycles must sum
    /// *exactly* to the run's total cycle count — every simulated cycle
    /// was charged to exactly one cause.
    ///
    /// # Errors
    ///
    /// A description of the imbalance, naming both sides and every
    /// nonzero bucket.
    pub fn check_identity(&self, total_cycles: u64) -> Result<(), String> {
        let attributed = self.total();
        if attributed == total_cycles {
            return Ok(());
        }
        let buckets: Vec<String> = self
            .iter()
            .filter(|&(_, v)| v > 0)
            .map(|(c, v)| format!("{} {v}", c.name()))
            .collect();
        Err(format!(
            "critical-path attribution identity violated: {attributed} attributed != \
             {total_cycles} total cycles ({})",
            buckets.join(" + "),
        ))
    }
}

/// Last-arrival dependence record for one in-flight instruction.
#[derive(Debug, Clone, Copy)]
struct OpRec {
    /// Dispatch cycle.
    dispatch: u64,
    /// Latest known operand-availability cycle for the master copy.
    ready: u64,
    /// The latest-arriving operand crossed clusters through the OTB.
    via_forward: bool,
    /// Some copy of this op stalled on operand-transfer-buffer credit.
    otb_blocked: bool,
    /// The master copy stalled on result-transfer-buffer credit.
    rtb_blocked: bool,
    /// Scheduler-inserted spill code.
    sched_inserted: bool,
    /// The result must cross to a slave cluster before retirement.
    slave_receives: bool,
    /// The op is a load that missed in the D-cache.
    dcache_miss: bool,
    /// Master issue cycle (valid once `issued`).
    issue: u64,
    /// Master completion cycle (valid once `issued`).
    done: u64,
    /// The master copy has issued.
    issued: bool,
}

impl OpRec {
    fn new(dispatch: u64) -> OpRec {
        OpRec {
            dispatch,
            ready: 0,
            via_forward: false,
            otb_blocked: false,
            rtb_blocked: false,
            sched_inserted: false,
            slave_receives: false,
            dcache_miss: false,
            issue: 0,
            done: 0,
            issued: false,
        }
    }
}

/// The attribution probe: implements [`Probe`], so it rides the same
/// zero-overhead hook points as [`super::ObsProbe`] — attach it with
/// [`crate::Processor::run_packed_observed`] and read the result with
/// [`CritPathProbe::attribution`].
#[derive(Debug, Default)]
pub struct CritPathProbe {
    /// Dependence records for in-flight (dispatched, unretired) ops;
    /// `recs[0]` is the op at `base`.
    recs: VecDeque<OpRec>,
    /// Sequence number of `recs[0]`.
    base: u64,
    /// Per-cycle front-end stall cause (`0` = dispatch was active,
    /// otherwise `StallCause::index() + 1`), indexed by cycle.
    stall_by_cycle: Vec<u8>,
    /// First cycle index not yet charged to a cause.
    next_cycle: u64,
    /// Running per-cause totals.
    by_cause: [u64; CritCause::COUNT],
    /// Instructions retired.
    retired: u64,
}

impl CritPathProbe {
    /// A fresh probe.
    #[must_use]
    pub fn new() -> CritPathProbe {
        CritPathProbe::default()
    }

    /// The finished breakdown for a run of `total_cycles` cycles: the
    /// retire-gap charges, plus the post-trace drain tail. The result
    /// satisfies [`CritAttribution::check_identity`] for the same
    /// `total_cycles`.
    #[must_use]
    pub fn attribution(&self, total_cycles: u64) -> CritAttribution {
        let mut by_cause = self.by_cause;
        if total_cycles > self.next_cycle {
            by_cause[CritCause::Drain.index()] += total_cycles - self.next_cycle;
        }
        CritAttribution { by_cause, retired: self.retired }
    }

    fn rec_mut(&mut self, seq: u64) -> Option<&mut OpRec> {
        let idx = seq.checked_sub(self.base)?;
        self.recs.get_mut(usize::try_from(idx).ok()?)
    }

    /// The front-end cause of cycle `c` (dispatch-active cycles read as
    /// bandwidth: the op simply had not been reached yet).
    fn front_cause(&self, c: u64) -> CritCause {
        let raw = usize::try_from(c)
            .ok()
            .and_then(|i| self.stall_by_cycle.get(i).copied())
            .unwrap_or(0);
        match raw.checked_sub(1) {
            Some(i) => CritCause::from_stall(StallCause::ALL[usize::from(i)]),
            None => CritCause::FrontBandwidth,
        }
    }

    /// Charges the retire gap `[lo, hi]` (inclusive cycle indices) by
    /// walking the gating op's timeline segments.
    fn charge_gap(&mut self, lo: u64, hi: u64, rec: Option<OpRec>) {
        let Some(rec) = rec else {
            // No record (e.g. attached mid-run): fall back to the
            // front-end per-cycle causes for the whole gap.
            for c in lo..=hi {
                self.by_cause[self.front_cause(c).index()] += 1;
            }
            return;
        };
        if rec.sched_inserted {
            // The op exists only because the scheduler spilled a
            // cross-cluster live range: its whole critical-path
            // contribution is scheduling overhead.
            self.by_cause[CritCause::SchedSpill.index()] += hi - lo + 1;
            return;
        }
        let mut cur = lo;
        // Front end: up to and including the dispatch cycle.
        let front_end = rec.dispatch.min(hi);
        while cur <= front_end {
            self.by_cause[self.front_cause(cur).index()] += 1;
            cur += 1;
        }
        // One clamped boundary per pipeline segment; each charge is the
        // clipped span (cur, bound].
        let mut charge_upto = |probe: &mut Self, bound: u64, cause: CritCause| {
            let end = bound.min(hi);
            if end >= cur {
                probe.by_cause[cause.index()] += end - cur + 1;
                cur = end + 1;
            }
        };
        let (issue, done) = if rec.issued { (rec.issue, rec.done) } else { (hi, hi) };
        // Operand wait: dispatch to last operand arrival.
        let ready_cause = if rec.via_forward && rec.otb_blocked {
            CritCause::OtbCredit
        } else if rec.via_forward {
            CritCause::InterClusterForward
        } else {
            CritCause::DataDep
        };
        charge_upto(self, rec.ready.min(issue), ready_cause);
        // Issue wait: ready but not selected.
        let issue_cause =
            if rec.rtb_blocked { CritCause::RtbCredit } else { CritCause::IssueWidth };
        charge_upto(self, issue, issue_cause);
        // Execution: issue to master completion.
        let exec_cause =
            if rec.dcache_miss { CritCause::DcacheMiss } else { CritCause::Execution };
        charge_upto(self, done, exec_cause);
        // Completion to retirement: the inter-cluster result transfer
        // for forwarding ops, in-order retire otherwise.
        let tail_cause = if rec.slave_receives {
            CritCause::InterClusterForward
        } else {
            CritCause::RetireWait
        };
        charge_upto(self, hi, tail_cause);
    }
}

impl Probe for CritPathProbe {
    fn dispatched(&mut self, cycle: u64, seq: u64, _master: ClusterId, _slave: Option<ClusterId>) {
        if self.recs.is_empty() {
            self.base = seq;
        }
        debug_assert_eq!(seq, self.base + self.recs.len() as u64);
        self.recs.push_back(OpRec::new(cycle));
    }

    fn op_dispatch_meta(
        &mut self,
        seq: u64,
        sched_inserted: bool,
        slave_receives: bool,
        ready_floor: u64,
        _ready_known: bool,
    ) {
        if let Some(rec) = self.rec_mut(seq) {
            rec.sched_inserted = sched_inserted;
            rec.slave_receives = slave_receives;
            rec.ready = rec.ready.max(ready_floor);
        }
    }

    fn operand_delivered(
        &mut self,
        seq: u64,
        avail: u64,
        source: DeliverySource,
        _producer: Option<u64>,
    ) {
        let via_forward = source == DeliverySource::OperandForward;
        if let Some(rec) = self.rec_mut(seq) {
            if avail > rec.ready {
                rec.ready = avail;
                rec.via_forward = via_forward;
            } else if avail == rec.ready {
                rec.via_forward |= via_forward;
            }
        }
    }

    fn issue_blocked(&mut self, _cycle: u64, seq: u64, cause: IssueBlock) {
        if let Some(rec) = self.rec_mut(seq) {
            match cause {
                IssueBlock::OtbFull => rec.otb_blocked = true,
                IssueBlock::RtbFull => rec.rtb_blocked = true,
                IssueBlock::Width => {}
            }
        }
    }

    fn load_missed(&mut self, seq: u64) {
        if let Some(rec) = self.rec_mut(seq) {
            rec.dcache_miss = true;
        }
    }

    fn issued(&mut self, cycle: u64, seq: u64, _cluster: ClusterId, copy: CopyKind, done: u64) {
        if copy == CopyKind::Master {
            if let Some(rec) = self.rec_mut(seq) {
                rec.issue = cycle;
                rec.done = done;
                rec.issued = true;
            }
        }
    }

    fn retired(&mut self, cycle: u64, seq: u64) {
        self.retired += 1;
        debug_assert_eq!(seq, self.base);
        let rec = if seq == self.base {
            let r = self.recs.pop_front();
            self.base += 1;
            r
        } else {
            None
        };
        if cycle < self.next_cycle {
            // Later op of a same-cycle retire batch: the gap is already
            // charged to the batch's gating (oldest) op.
            return;
        }
        let lo = self.next_cycle;
        self.next_cycle = cycle + 1;
        self.charge_gap(lo, cycle, rec);
    }

    fn replayed(&mut self, _cycle: u64, from_seq: u64, _squashed: u64) {
        // Squashed ops re-dispatch with fresh records; drop the stale
        // ones (they would otherwise shadow the re-dispatch).
        if from_seq <= self.base {
            self.recs.clear();
            self.base = from_seq;
        } else {
            let keep = usize::try_from(from_seq - self.base).unwrap_or(usize::MAX);
            self.recs.truncate(keep);
        }
    }

    fn stalled(&mut self, cycle: u64, cause: StallCause) {
        if let Ok(i) = usize::try_from(cycle) {
            if self.stall_by_cycle.len() <= i {
                self.stall_by_cycle.resize(i + 1, 0);
            }
            self.stall_by_cycle[i] = cause.index() as u8 + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Processor, ProcessorConfig};
    use mcl_isa::ArchReg;
    use mcl_trace::ProgramBuilder;

    fn cross_cluster_program() -> mcl_trace::Program<ArchReg> {
        // Alternating even/odd destinations: every add crosses clusters,
        // exercising forwards, transfer buffers, and dual distribution.
        let mut b = ProgramBuilder::<ArchReg>::new("critpath");
        let (e, o) = (ArchReg::int(2), ArchReg::int(3));
        b.lda(e, 0);
        for _ in 0..24 {
            b.addq_imm(o, e, 1);
            b.addq_imm(e, o, 1);
        }
        b.ret(ArchReg::ZERO);
        b.finish().expect("valid program")
    }

    #[test]
    fn cause_indices_are_dense_and_names_unique() {
        for (i, cause) in CritCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        let mut names: Vec<&str> = CritCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CritCause::COUNT);
    }

    #[test]
    fn attribution_identity_holds_and_probe_does_not_perturb() {
        for cfg in [
            ProcessorConfig::single_cluster_8way(),
            ProcessorConfig::dual_cluster_8way(),
            {
                // Tiny transfer buffers force replays and credit stalls
                // through the attribution path.
                let mut tiny = ProcessorConfig::dual_cluster_8way();
                tiny.operand_buffer = 1;
                tiny.result_buffer = 1;
                tiny
            },
        ] {
            let program = cross_cluster_program();
            let plain = Processor::new(cfg.clone()).run_program(&program).unwrap().stats;
            let (trace, _) = mcl_trace::vm::trace_program(&program).unwrap();
            let mut probe = CritPathProbe::new();
            let observed =
                Processor::new(cfg).run_trace_observed(&trace, &mut probe).unwrap().stats;
            assert_eq!(observed, plain, "probe perturbed the simulation");
            let attr = probe.attribution(observed.cycles);
            attr.check_identity(observed.cycles).unwrap();
            assert_eq!(attr.retired, observed.retired);
            assert!(attr.total() == observed.cycles);
        }
    }

    #[test]
    fn identity_check_reports_imbalance() {
        let mut attr = CritAttribution::default();
        attr.by_cause[CritCause::Execution.index()] = 5;
        assert!(attr.check_identity(5).is_ok());
        let err = attr.check_identity(7).unwrap_err();
        assert!(err.contains("5 attributed != 7 total"), "{err}");
        assert!(err.contains("execution 5"), "{err}");
    }

    #[test]
    fn drain_tail_lands_in_the_drain_bucket() {
        let mut probe = CritPathProbe::new();
        probe.next_cycle = 10;
        let attr = probe.attribution(25);
        assert_eq!(attr.cycles(CritCause::Drain), 15);
    }
}
