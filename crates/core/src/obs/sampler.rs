//! Per-interval time series ("pipeline weather").

use crate::obs::{CycleSnapshot, StallCause};

/// One closed sampling interval.
///
/// Throughput fields (`retired`, `dispatched`, `issued`, `replays`,
/// `stalls`) are deltas over the interval; occupancy fields are a
/// point-in-time snapshot at the interval's last cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sample {
    /// Last cycle of the interval (inclusive).
    pub cycle_end: u64,
    /// Cycles covered (the configured interval, except a trailing
    /// partial interval flushed by [`IntervalSampler::finish`]).
    pub cycles: u64,
    /// Instructions retired during the interval.
    pub retired: u64,
    /// Instructions dispatched during the interval.
    pub dispatched: u64,
    /// Copies issued during the interval.
    pub issued: u64,
    /// Replay exceptions taken during the interval.
    pub replays: u64,
    /// Whole stalled cycles, by cause ([`StallCause::index`] order).
    pub stalls: [u64; StallCause::COUNT],
    /// In-flight instructions at interval close.
    pub window: u32,
    /// Occupied dispatch-queue entries at interval close, per cluster.
    pub dq_used: [u32; 2],
    /// Occupied operand-buffer entries at interval close, per cluster.
    pub otb_used: [u32; 2],
    /// Occupied result-buffer entries at interval close, per cluster.
    pub rtb_used: [u32; 2],
    /// Free integer physical registers at interval close, per cluster.
    pub int_free: [i64; 2],
    /// Free fp physical registers at interval close, per cluster.
    pub fp_free: [i64; 2],
}

impl Sample {
    /// Retired instructions per cycle over the interval.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// Accumulates per-cycle deltas and closes a [`Sample`] every N cycles.
///
/// Feed it from probe hooks (`on_retire` etc.), call
/// [`IntervalSampler::on_cycle_end`] once per simulated cycle, and
/// [`IntervalSampler::finish`] once after the run to flush a trailing
/// partial interval.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    interval: u64,
    samples: Vec<Sample>,
    acc: Sample,
    cycles_in: u64,
    last_snap: CycleSnapshot,
}

impl IntervalSampler {
    /// A sampler closing one [`Sample`] every `interval` cycles
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(interval: u64) -> IntervalSampler {
        IntervalSampler {
            interval: interval.max(1),
            samples: Vec::new(),
            acc: Sample::default(),
            cycles_in: 0,
            last_snap: CycleSnapshot::default(),
        }
    }

    /// The configured interval length.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Counts one retirement.
    pub fn on_retire(&mut self) {
        self.acc.retired += 1;
    }

    /// Counts one dispatch.
    pub fn on_dispatch(&mut self) {
        self.acc.dispatched += 1;
    }

    /// Counts one issued copy.
    pub fn on_issue(&mut self) {
        self.acc.issued += 1;
    }

    /// Counts one replay exception.
    pub fn on_replay(&mut self) {
        self.acc.replays += 1;
    }

    /// Counts one whole stalled cycle attributed to `cause`.
    pub fn on_stall(&mut self, cause: StallCause) {
        self.acc.stalls[cause.index()] += 1;
    }

    /// Advances one cycle; closes the interval when due.
    pub fn on_cycle_end(&mut self, snap: &CycleSnapshot) {
        self.cycles_in += 1;
        self.last_snap = *snap;
        if (snap.cycle + 1).is_multiple_of(self.interval) {
            self.close();
        }
    }

    /// Flushes a trailing partial interval, if any.
    pub fn finish(&mut self) {
        if self.cycles_in > 0 {
            self.close();
        }
    }

    /// The closed samples so far.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    fn close(&mut self) {
        let snap = &self.last_snap;
        self.acc.cycle_end = snap.cycle;
        self.acc.cycles = self.cycles_in;
        self.acc.window = snap.window;
        self.acc.dq_used = snap.dq_used;
        self.acc.otb_used = snap.otb_used;
        self.acc.rtb_used = snap.rtb_used;
        self.acc.int_free = snap.int_free;
        self.acc.fp_free = snap.fp_free;
        self.samples.push(self.acc);
        self.acc = Sample::default();
        self.cycles_in = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycle: u64) -> CycleSnapshot {
        CycleSnapshot { cycle, window: cycle as u32, ..CycleSnapshot::default() }
    }

    #[test]
    fn closes_every_interval_and_flushes_partial() {
        let mut s = IntervalSampler::new(4);
        for cycle in 0..10 {
            s.on_retire();
            if cycle % 2 == 0 {
                s.on_dispatch();
            }
            s.on_cycle_end(&snap(cycle));
        }
        s.finish();
        let samples = s.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].cycle_end, 3);
        assert_eq!(samples[0].cycles, 4);
        assert_eq!(samples[1].cycle_end, 7);
        assert_eq!(samples[1].cycles, 4);
        assert_eq!(samples[2].cycle_end, 9);
        assert_eq!(samples[2].cycles, 2, "trailing partial interval");
        // Deltas sum to the run totals; occupancy is point-in-time.
        assert_eq!(samples.iter().map(|s| s.retired).sum::<u64>(), 10);
        assert_eq!(samples.iter().map(|s| s.dispatched).sum::<u64>(), 5);
        assert_eq!(samples[1].window, 7);
        assert_eq!(samples[2].ipc(), 1.0);
    }

    #[test]
    fn empty_run_produces_no_samples() {
        let mut s = IntervalSampler::new(8);
        s.finish();
        assert!(s.samples().is_empty());
        s.finish(); // idempotent
        assert!(s.samples().is_empty());
    }

    #[test]
    fn interval_of_one_samples_every_cycle() {
        let mut s = IntervalSampler::new(1);
        for cycle in 0..3 {
            s.on_stall(StallCause::DispatchQueue);
            s.on_cycle_end(&snap(cycle));
        }
        s.finish();
        assert_eq!(s.samples().len(), 3);
        for (i, sample) in s.samples().iter().enumerate() {
            assert_eq!(sample.cycle_end, i as u64);
            assert_eq!(sample.cycles, 1);
            assert_eq!(sample.stalls[StallCause::DispatchQueue.index()], 1);
        }
    }

    #[test]
    fn zero_interval_is_clamped() {
        assert_eq!(IntervalSampler::new(0).interval(), 1);
    }
}
