//! Instruction distribution: deciding, from the architectural registers
//! an instruction names, which cluster(s) execute it (Section 2.1).

use mcl_isa::{assign::RegisterAssignment, ArchReg, ClusterId, ClusterSet, RegBank};
use mcl_trace::TraceOp;

/// The distribution decision for one dynamic instruction.
///
/// Covers the five execution scenarios of Section 2.1:
///
/// 1. single-cluster execution;
/// 2. dual execution, slave forwards a source operand to the master;
/// 3. dual execution, master forwards the result to the slave's cluster
///    (the destination is local to the slave's cluster);
/// 4. dual execution for a global destination (sources all readable by
///    the master);
/// 5. dual execution with both an operand forward and a global result.
///
/// The physical-register allocations of one instruction, as
/// (cluster, bank) pairs — at most one per cluster, held inline so the
/// dispatch hot path never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysRegs {
    len: u8,
    regs: [(ClusterId, RegBank); 2],
}

impl PhysRegs {
    /// No allocations (instructions without a destination).
    #[must_use]
    pub fn none() -> PhysRegs {
        PhysRegs { len: 0, regs: [(ClusterId::C0, RegBank::Int); 2] }
    }

    fn push(&mut self, cluster: ClusterId, bank: RegBank) {
        self.regs[usize::from(self.len)] = (cluster, bank);
        self.len += 1;
    }

    /// Number of allocations (0–2).
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether no physical register is needed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The (cluster, bank) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClusterId, RegBank)> + '_ {
        self.regs[..usize::from(self.len)].iter().copied()
    }
}

impl Default for PhysRegs {
    fn default() -> PhysRegs {
        PhysRegs::none()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Distribution {
    /// The clusters the instruction is distributed to.
    pub clusters: ClusterSet,
    /// The cluster executing the master copy (the computation).
    pub master: ClusterId,
    /// The cluster executing the slave copy, for dual distribution.
    pub slave: Option<ClusterId>,
    /// Which source slots the slave copy reads and forwards through the
    /// operand transfer buffer.
    pub forwarded_src: [bool; 2],
    /// Whether the slave copy receives the result (destination local to
    /// the slave's cluster, or global).
    pub slave_receives: bool,
    /// The Section 2.1 scenario number (1–5).
    pub scenario: u8,
}

impl Distribution {
    /// Whether the instruction is distributed to more than one cluster.
    #[must_use]
    pub fn is_dual(&self) -> bool {
        self.slave.is_some()
    }

    /// The physical-register allocations this instruction requires, as
    /// (cluster, bank) pairs: one in the destination's cluster for a
    /// local destination, one per cluster for a global destination.
    #[must_use]
    pub fn phys_needed(&self, op: &TraceOp, assign: &RegisterAssignment) -> PhysRegs {
        let Some(dest) = op.dest else { return PhysRegs::none() };
        let bank = dest.bank();
        let mut regs = PhysRegs::none();
        for c in assign.clusters_of(dest).iter() {
            if c.index() < usize::from(assign.clusters()) {
                regs.push(c, bank);
            }
        }
        regs
    }
}

/// Decides the distribution of `op` under `assign`.
///
/// Master-copy selection follows the paper: "the master copy is executed
/// by cluster *c* because the majority of the local registers named by
/// the instruction are assigned to cluster *c*". Ties prefer the
/// destination's cluster (avoiding a result forward), then the cluster
/// with the lighter dynamic load (`balance` counts instructions
/// distributed so far).
#[must_use]
pub fn distribute(op: &TraceOp, assign: &RegisterAssignment, balance: &[u64; 2]) -> Distribution {
    let n = assign.clusters();
    if n <= 1 {
        return Distribution {
            clusters: ClusterSet::only(ClusterId::C0),
            master: ClusterId::C0,
            slave: None,
            forwarded_src: [false, false],
            slave_receives: false,
            scenario: 1,
        };
    }
    debug_assert_eq!(n, 2, "distribution implemented for two clusters");

    let dest_global = op.dest.is_some_and(|d| assign.assignment_of(d).is_global());

    // Majority vote over the named *local* registers.
    let mut votes = [0u32; 2];
    let mut needed = ClusterSet::empty();
    let local_cluster = |r: ArchReg| assign.assignment_of(r).local_cluster();
    for src in op.reads() {
        if let Some(c) = local_cluster(src) {
            votes[c.index()] += 1;
            needed.insert(c);
        }
    }
    let dest_cluster = op.dest.and_then(local_cluster);
    if let Some(c) = dest_cluster {
        votes[c.index()] += 1;
        needed.insert(c);
    }
    if dest_global {
        needed = ClusterSet::first_n(n);
    }

    // Single distribution when one cluster (or none) suffices.
    if !dest_global && needed.len() <= 1 {
        let master = needed.single().unwrap_or_else(|| {
            // No register constraints at all: balance the load.
            if balance[0] <= balance[1] {
                ClusterId::C0
            } else {
                ClusterId::C1
            }
        });
        return Distribution {
            clusters: ClusterSet::only(master),
            master,
            slave: None,
            forwarded_src: [false, false],
            slave_receives: false,
            scenario: 1,
        };
    }

    // Dual distribution: pick the master.
    let master = if votes[0] > votes[1] {
        ClusterId::C0
    } else if votes[1] > votes[0] {
        ClusterId::C1
    } else if let Some(c) = dest_cluster {
        c // prefer keeping the result local to the master
    } else if balance[0] <= balance[1] {
        ClusterId::C0
    } else {
        ClusterId::C1
    };
    let slave = master.other();

    let mut forwarded_src = [false, false];
    for (i, src) in op.srcs.iter().enumerate() {
        if let Some(r) = *src {
            if local_cluster(r) == Some(slave) {
                forwarded_src[i] = true;
            }
        }
    }
    let slave_receives = dest_global || dest_cluster == Some(slave);
    let forwards = forwarded_src.iter().any(|&f| f);

    debug_assert!(
        forwards || slave_receives,
        "a slave copy must forward an operand or receive a result"
    );

    let scenario = match (forwards, slave_receives, dest_global) {
        (true, false, _) => 2,
        (false, true, false) => 3,
        (false, true, true) => 4,
        (true, true, _) => 5,
        (false, false, _) => unreachable!("checked above"),
    };

    Distribution {
        clusters: ClusterSet::first_n(n),
        master,
        slave: Some(slave),
        forwarded_src,
        slave_receives,
        scenario,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_isa::Opcode;

    fn assign2() -> RegisterAssignment {
        RegisterAssignment::even_odd_with_default_globals(2)
    }

    fn add(dest: ArchReg, a: ArchReg, b: ArchReg) -> TraceOp {
        TraceOp {
            seq: 0,
            pc: 0x1000,
            op: Opcode::Addq,
            dest: Some(dest),
            srcs: [Some(a), Some(b)],
            mem_addr: None,
            branch: None,
            sched_inserted: false,
        }
    }

    // Register parity: even -> C0, odd -> C1; SP(r30)/GP(r29) global.
    fn even(i: u8) -> ArchReg {
        ArchReg::int(i * 2)
    }
    fn odd(i: u8) -> ArchReg {
        ArchReg::int(i * 2 + 1)
    }

    #[test]
    fn scenario1_all_registers_one_cluster() {
        let d = distribute(&add(even(1), even(2), even(3)), &assign2(), &[0, 0]);
        assert_eq!(d.scenario, 1);
        assert!(!d.is_dual());
        assert_eq!(d.master, ClusterId::C0);
    }

    #[test]
    fn scenario2_operand_forwarded() {
        // Paper's scenario two: r1 (slave cluster) forwarded; dest and
        // other source on the master cluster.
        let d = distribute(&add(even(1), odd(0), even(2)), &assign2(), &[0, 0]);
        assert_eq!(d.scenario, 2);
        assert_eq!(d.master, ClusterId::C0);
        assert_eq!(d.slave, Some(ClusterId::C1));
        assert_eq!(d.forwarded_src, [true, false]);
        assert!(!d.slave_receives);
    }

    #[test]
    fn scenario3_result_forwarded() {
        // Both sources on C0, destination on C1.
        let d = distribute(&add(odd(1), even(0), even(1)), &assign2(), &[0, 0]);
        assert_eq!(d.scenario, 3);
        assert_eq!(d.master, ClusterId::C0);
        assert_eq!(d.slave, Some(ClusterId::C1));
        assert_eq!(d.forwarded_src, [false, false]);
        assert!(d.slave_receives);
    }

    #[test]
    fn scenario4_global_destination() {
        let d = distribute(&add(ArchReg::SP, even(0), even(1)), &assign2(), &[0, 0]);
        assert_eq!(d.scenario, 4);
        assert_eq!(d.master, ClusterId::C0, "sources vote for cluster 0");
        assert!(d.slave_receives);
        assert_eq!(d.forwarded_src, [false, false]);
    }

    #[test]
    fn scenario5_operand_and_global_result() {
        // Sources split across clusters, global destination.
        let d = distribute(&add(ArchReg::SP, even(0), odd(0)), &assign2(), &[0, 0]);
        assert_eq!(d.scenario, 5);
        assert!(d.slave_receives);
        assert!(d.forwarded_src.iter().any(|&f| f));
    }

    #[test]
    fn majority_rule_selects_master() {
        // Two registers on C1, one on C0: master must be C1.
        let d = distribute(&add(odd(2), odd(3), even(1)), &assign2(), &[0, 0]);
        assert_eq!(d.master, ClusterId::C1);
        assert_eq!(d.forwarded_src, [false, true]);
    }

    #[test]
    fn no_register_instruction_balances_load() {
        let br = TraceOp {
            seq: 0,
            pc: 0x1000,
            op: Opcode::Br,
            dest: None,
            srcs: [None, None],
            mem_addr: None,
            branch: None,
            sched_inserted: false,
        };
        let d0 = distribute(&br, &assign2(), &[5, 9]);
        assert_eq!(d0.master, ClusterId::C0);
        let d1 = distribute(&br, &assign2(), &[9, 5]);
        assert_eq!(d1.master, ClusterId::C1);
        assert_eq!(d0.scenario, 1);
    }

    #[test]
    fn global_sources_do_not_force_dual() {
        // Loads off the (global) stack pointer into a local register
        // stay single-cluster: SP is readable everywhere.
        let ld = TraceOp {
            seq: 0,
            pc: 0x1000,
            op: Opcode::Ldq,
            dest: Some(even(2)),
            srcs: [Some(ArchReg::SP), None],
            mem_addr: Some(0x8000),
            branch: None,
            sched_inserted: false,
        };
        let d = distribute(&ld, &assign2(), &[0, 0]);
        assert_eq!(d.scenario, 1);
        assert_eq!(d.master, ClusterId::C0);
    }

    #[test]
    fn single_cluster_configuration_never_duals() {
        let assign = RegisterAssignment::single_cluster();
        let d = distribute(&add(ArchReg::int(1), ArchReg::int(2), ArchReg::int(3)), &assign, &[0, 0]);
        assert_eq!(d.scenario, 1);
        assert!(!d.is_dual());
    }

    #[test]
    fn phys_needed_counts_clusters_holding_the_destination() {
        let a = assign2();
        let local = distribute(&add(even(1), even(2), even(3)), &a, &[0, 0]);
        let op_local = add(even(1), even(2), even(3));
        assert_eq!(local.phys_needed(&op_local, &a).len(), 1);

        let op_global = add(ArchReg::SP, even(0), even(1));
        let global = distribute(&op_global, &a, &[0, 0]);
        assert_eq!(global.phys_needed(&op_global, &a).len(), 2);

        let store = TraceOp {
            seq: 0,
            pc: 0x1000,
            op: Opcode::Stq,
            dest: None,
            srcs: [Some(even(0)), Some(even(1))],
            mem_addr: Some(0x4000),
            branch: None,
            sched_inserted: false,
        };
        let d = distribute(&store, &a, &[0, 0]);
        assert!(d.phys_needed(&store, &a).is_empty());
    }

    #[test]
    fn tie_break_prefers_destination_cluster() {
        // One source on C0, dest on C1 (1 vote each): master should be
        // the destination's cluster, making it an operand forward.
        let op = TraceOp {
            seq: 0,
            pc: 0x1000,
            op: Opcode::Addq,
            dest: Some(odd(1)),
            srcs: [Some(even(1)), None],
            mem_addr: None,
            branch: None,
            sched_inserted: false,
        };
        let d = distribute(&op, &assign2(), &[0, 0]);
        assert_eq!(d.master, ClusterId::C1);
        assert_eq!(d.scenario, 2);
    }
}
