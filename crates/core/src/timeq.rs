//! A hierarchical time-wheel event queue for the simulation engine.
//!
//! The simulator schedules everything it knows about the future —
//! completion events, transfer-buffer credit returns, branch
//! resolutions, wake checks, ready-queue entries — at absolute cycles.
//! [`TimeQ`] stores those events in a 1024-slot time wheel indexed by
//! `cycle % 1024`, with a two-level occupancy bitmap (16 slot words
//! under one summary word) so the earliest occupied slot is found with
//! a handful of `trailing_zeros` instructions, in O(1). Events beyond
//! the wheel horizon wait in a small overflow heap and are re-folded
//! into the wheel as the base advances.
//!
//! # Ordering
//!
//! [`TimeQ::pop_due`] yields due entries sorted by `(cycle, key, tick)`
//! where `tick` is a per-queue insertion counter: same-cycle entries
//! drain in key order, and exact duplicates in insertion order. This
//! reproduces the pop order of the `BinaryHeap<Reverse<(cycle, key)>>`
//! formulation the engine used before, which is what keeps the
//! ticked and event-driven engines byte-identical (branch resolutions,
//! for example, must update the predictor in `(cycle, seq)` order).
//!
//! # Late scheduling
//!
//! An entry scheduled for a cycle the queue has already drained past
//! (the engine does this: operand-availability times can lie at or
//! before the cycle that computes them) is clamped into the current
//! base slot and pops on the next `pop_due` call — exactly when the
//! heap formulation would have delivered it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel size in slots (cycles). Power of two, `WORDS * 64`.
const WHEEL_SLOTS: usize = 1024;
/// Occupancy-bitmap words under the summary word.
const WORDS: usize = WHEEL_SLOTS / 64;

/// One scheduled event: fires at `cycle`, ordered within the cycle by
/// `key`, carrying one word of `data` the producer packs as it likes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Absolute cycle the event fires at.
    pub cycle: u64,
    /// Same-cycle drain order, typically an instruction sequence number.
    pub key: u64,
    /// Insertion counter: makes `(cycle, key, tick)` a total order, so
    /// duplicate `(cycle, key)` schedules drain in insertion order.
    tick: u64,
    /// Producer-packed payload.
    pub data: u64,
}

/// The time-wheel event queue. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct TimeQ {
    /// Earliest cycle the wheel can hold; every wheel entry's effective
    /// cycle lies in `[base, base + WHEEL_SLOTS)`.
    base: u64,
    len: usize,
    tick: u64,
    /// Bit `w` set iff `words[w] != 0`.
    summary: u64,
    /// Bit `s % 64` of `words[s / 64]` set iff slot `s` is occupied.
    words: [u64; WORDS],
    slots: Vec<Vec<Entry>>,
    /// Entries at or beyond `base + WHEEL_SLOTS`, folded back into the
    /// wheel as the base advances.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Cached delivery cycle of the earliest scheduled entry
    /// (`u64::MAX` when empty). Lets [`TimeQ::pop_due`] answer the
    /// overwhelmingly common nothing-due-yet case — the simulator polls
    /// its queues every live cycle — with one compare instead of a
    /// bitmap walk, and makes [`TimeQ::next_cycle`] O(1).
    next_due: u64,
}

impl Default for TimeQ {
    fn default() -> TimeQ {
        TimeQ::new()
    }
}

impl TimeQ {
    /// Creates an empty queue anchored at cycle 0.
    #[must_use]
    pub fn new() -> TimeQ {
        TimeQ {
            base: 0,
            len: 0,
            tick: 0,
            summary: 0,
            words: [0; WORDS],
            slots: vec![Vec::new(); WHEEL_SLOTS],
            overflow: BinaryHeap::new(),
            next_due: u64::MAX,
        }
    }

    /// Number of scheduled entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an event. Cycles already drained past clamp into the
    /// base slot (see the module docs); cycles beyond the wheel horizon
    /// go to the overflow heap.
    pub fn schedule(&mut self, cycle: u64, key: u64, data: u64) {
        self.tick += 1;
        let entry = Entry { cycle, key, tick: self.tick, data };
        self.len += 1;
        if cycle >= self.base + WHEEL_SLOTS as u64 {
            if cycle < self.next_due {
                self.next_due = cycle;
            }
            self.overflow.push(Reverse(entry));
            return;
        }
        // A cycle already drained past clamps into the base slot, so
        // its delivery cycle (what the cache tracks) is the base.
        let effective = cycle.max(self.base);
        if effective < self.next_due {
            self.next_due = effective;
        }
        let slot = (effective % WHEEL_SLOTS as u64) as usize;
        self.set_bit(slot);
        self.slots[slot].push(entry);
    }

    /// Appends every entry due at or before `now` to `out`, sorted by
    /// `(cycle, key, tick)`, and advances the base past the drained
    /// span (so the base never trails `now`).
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<Entry>) {
        if now < self.next_due {
            // Nothing due: the cache proves no occupied slot lies in
            // `[base, now]`, so the base can jump without a scan. Slot
            // assignments stay valid — every live entry's delivery
            // cycle is `>= next_due > now`, within the new window.
            self.base = self.base.max(now);
            return;
        }
        self.pop_due_slow(now, out);
        self.next_due = self.earliest_delivery();
    }

    fn pop_due_slow(&mut self, now: u64, out: &mut Vec<Entry>) {
        loop {
            if self.summary == 0 {
                match self.overflow.peek() {
                    // Jump the empty wheel straight to the next
                    // overflow entry so refilling lands it in range.
                    Some(&Reverse(e)) if e.cycle <= now => self.base = e.cycle,
                    _ => {
                        self.base = self.base.max(now);
                        return;
                    }
                }
            }
            while let Some(&Reverse(e)) = self.overflow.peek() {
                if e.cycle >= self.base + WHEEL_SLOTS as u64 {
                    break;
                }
                self.overflow.pop();
                let slot = (e.cycle % WHEEL_SLOTS as u64) as usize;
                self.set_bit(slot);
                self.slots[slot].push(e);
            }
            if now < self.base {
                return;
            }
            let horizon = now.min(self.base + (WHEEL_SLOTS as u64 - 1));
            self.drain_window(horizon, out);
            if horizon == now {
                self.base = now;
                return;
            }
            self.base = horizon + 1;
        }
    }

    /// The cycle of the next `pop_due` delivery, if anything is
    /// scheduled. Late-clamped entries report their delivery cycle (the
    /// base slot), not their original one. O(1) — served from the
    /// cache `pop_due` and `schedule` maintain.
    #[must_use]
    pub fn next_cycle(&self) -> Option<u64> {
        (self.len != 0).then_some(self.next_due)
    }

    /// Recomputes the earliest delivery cycle from the wheel bitmap and
    /// the overflow heap (`u64::MAX` when empty) — the slow form of
    /// [`TimeQ::next_cycle`], run after anything is removed.
    fn earliest_delivery(&self) -> u64 {
        let wheel = self.first_occupied().map(|slot| {
            let start = (self.base % WHEEL_SLOTS as u64) as usize;
            self.base + ((slot + WHEEL_SLOTS - start) % WHEEL_SLOTS) as u64
        });
        let over = self.overflow.peek().map(|&Reverse(e)| e.cycle);
        match (wheel, over) {
            (Some(a), Some(b)) => a.min(b),
            (a, b) => a.or(b).unwrap_or(u64::MAX),
        }
    }

    /// The entry `pop_earliest` would return, without removing it.
    #[must_use]
    pub fn peek_earliest(&self) -> Option<Entry> {
        let wheel = self
            .first_occupied()
            .map(|slot| *self.slots[slot].iter().min().expect("occupied slot"));
        let over = self.overflow.peek().map(|&Reverse(e)| e);
        match (wheel, over) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Removes and returns the earliest entry by `(cycle, key, tick)`.
    pub fn pop_earliest(&mut self) -> Option<Entry> {
        if let Some(slot) = self.first_occupied() {
            let v = &mut self.slots[slot];
            let i = (0..v.len()).min_by_key(|&i| v[i]).expect("occupied slot");
            let e = v.remove(i);
            if v.is_empty() {
                self.clear_bit(slot);
            }
            self.len -= 1;
            self.next_due = self.earliest_delivery();
            return Some(e);
        }
        self.overflow.pop().map(|Reverse(e)| {
            self.len -= 1;
            self.next_due = self.earliest_delivery();
            e
        })
    }

    /// Keeps only the entries `keep` accepts.
    pub fn retain(&mut self, mut keep: impl FnMut(&Entry) -> bool) {
        for slot in 0..WHEEL_SLOTS {
            if self.slots[slot].is_empty() {
                continue;
            }
            let before = self.slots[slot].len();
            self.slots[slot].retain(|e| keep(e));
            self.len -= before - self.slots[slot].len();
            if self.slots[slot].is_empty() {
                self.clear_bit(slot);
            }
        }
        let before = self.overflow.len();
        let kept: Vec<Reverse<Entry>> =
            self.overflow.drain().filter(|Reverse(e)| keep(e)).collect();
        self.len -= before - kept.len();
        self.overflow = kept.into_iter().collect();
        self.next_due = self.earliest_delivery();
    }

    /// Removes every entry and re-anchors at cycle 0, leaving the queue
    /// as `new()` would (minus the allocations).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.words = [0; WORDS];
        self.summary = 0;
        self.overflow.clear();
        self.len = 0;
        self.base = 0;
        self.tick = 0;
        self.next_due = u64::MAX;
    }

    /// Visits every scheduled entry in no particular order. Walks the
    /// occupancy bitmap rather than all [`WHEEL_SLOTS`] slot headers,
    /// so a sparse queue (the common case — the invariant checker
    /// calls this every validated cycle) costs O(occupied slots).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        (0..WORDS)
            .filter(|&w| self.summary & (1 << w) != 0)
            .flat_map(move |w| {
                let mut bits = self.words[w];
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let slot = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(slot)
                })
            })
            .flat_map(|slot| self.slots[slot].iter())
            .chain(self.overflow.iter().map(|Reverse(e)| e))
    }

    fn set_bit(&mut self, slot: usize) {
        self.words[slot / 64] |= 1 << (slot % 64);
        self.summary |= 1 << (slot / 64);
    }

    fn clear_bit(&mut self, slot: usize) {
        self.words[slot / 64] &= !(1 << (slot % 64));
        if self.words[slot / 64] == 0 {
            self.summary &= !(1 << (slot / 64));
        }
    }

    /// First occupied slot in circular order from the base slot.
    fn first_occupied(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let start = (self.base % WHEEL_SLOTS as u64) as usize;
        self.scan_range(start, WHEEL_SLOTS).or_else(|| self.scan_range(0, start))
    }

    /// First occupied slot in `[from, to)`, linear.
    fn scan_range(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let first_w = from / 64;
        let last_w = (to - 1) / 64;
        for w in first_w..=last_w {
            if self.summary & (1 << w) == 0 {
                continue;
            }
            let mut bits = self.words[w];
            if w == first_w {
                bits &= !0u64 << (from % 64);
            }
            if w == last_w && !to.is_multiple_of(64) {
                bits &= (1u64 << (to % 64)) - 1;
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Drains occupied slots with effective cycles in `[base, horizon]`
    /// into `out`, each slot sorted, in cycle order.
    fn drain_window(&mut self, horizon: u64, out: &mut Vec<Entry>) {
        let start = (self.base % WHEEL_SLOTS as u64) as usize;
        let span = (horizon - self.base + 1) as usize;
        let first = span.min(WHEEL_SLOTS - start);
        self.drain_range(start, start + first, out);
        if span > first {
            self.drain_range(0, span - first, out);
        }
    }

    /// Drains occupied slots in `[from, to)`, linear, position order.
    fn drain_range(&mut self, from: usize, to: usize, out: &mut Vec<Entry>) {
        let first_w = from / 64;
        let last_w = (to - 1) / 64;
        for w in first_w..=last_w {
            if self.summary & (1 << w) == 0 {
                continue;
            }
            let mut bits = self.words[w];
            if w == first_w {
                bits &= !0u64 << (from % 64);
            }
            if w == last_w && !to.is_multiple_of(64) {
                bits &= (1u64 << (to % 64)) - 1;
            }
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut v = std::mem::take(&mut self.slots[slot]);
                if v.len() > 1 {
                    v.sort_unstable();
                }
                self.len -= v.len();
                out.append(&mut v);
                self.slots[slot] = v;
                self.clear_bit(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut TimeQ, now: u64) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        q.pop_due(now, &mut out);
        out.into_iter().map(|e| (e.cycle, e.key, e.data)).collect()
    }

    #[test]
    fn pops_in_cycle_then_key_order() {
        let mut q = TimeQ::new();
        q.schedule(7, 2, 20);
        q.schedule(3, 9, 90);
        q.schedule(7, 1, 10);
        q.schedule(5, 4, 40);
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q, 6), vec![(3, 9, 90), (5, 4, 40)]);
        assert_eq!(drain(&mut q, 6), vec![], "nothing due twice");
        assert_eq!(drain(&mut q, 7), vec![(7, 1, 10), (7, 2, 20)]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_same_key_pops_fifo() {
        let mut q = TimeQ::new();
        q.schedule(4, 8, 1);
        q.schedule(4, 8, 2);
        q.schedule(4, 8, 3);
        assert_eq!(drain(&mut q, 4), vec![(4, 8, 1), (4, 8, 2), (4, 8, 3)]);
    }

    #[test]
    fn late_schedules_clamp_to_the_next_drain() {
        let mut q = TimeQ::new();
        q.schedule(10, 1, 0);
        assert_eq!(drain(&mut q, 10), vec![(10, 1, 0)]);
        // Cycle 3 is already drained past; the entry must still come
        // out on the very next pop, ahead of same-pop later cycles.
        q.schedule(3, 7, 0);
        q.schedule(11, 2, 0);
        assert_eq!(drain(&mut q, 11), vec![(3, 7, 0), (11, 2, 0)]);
    }

    #[test]
    fn far_future_entries_ride_the_overflow_ring() {
        let mut q = TimeQ::new();
        q.schedule(5, 1, 0);
        q.schedule(100_000, 2, 0); // far beyond the 1024-slot horizon
        q.schedule(2_000_000, 3, 0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_cycle(), Some(5));
        assert_eq!(drain(&mut q, 50), vec![(5, 1, 0)]);
        assert_eq!(q.next_cycle(), Some(100_000));
        assert_eq!(drain(&mut q, 99_999), vec![]);
        assert_eq!(drain(&mut q, 100_000), vec![(100_000, 2, 0)]);
        assert_eq!(drain(&mut q, 3_000_000), vec![(2_000_000, 3, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_wraps_around_without_mixing_cycles() {
        let mut q = TimeQ::new();
        // Walk the base across several wheel lengths with entries that
        // straddle each wrap point.
        let mut expected = Vec::new();
        for lap in 0..5u64 {
            let c = lap * 1000 + 1020; // crosses the 1024 boundary repeatedly
            q.schedule(c, lap, 0);
            expected.push((c, lap, 0));
        }
        let mut got = Vec::new();
        for now in (0..8000).step_by(97) {
            got.extend(drain(&mut q, now));
        }
        got.extend(drain(&mut q, 8000));
        assert_eq!(got, expected);
    }

    #[test]
    fn overflow_refills_preserve_ordering_across_a_big_jump() {
        let mut q = TimeQ::new();
        q.schedule(5000, 2, 0);
        q.schedule(4096, 1, 0);
        q.schedule(9000, 3, 0);
        // One pop far past everything: all three, still in order.
        assert_eq!(drain(&mut q, 10_000), vec![(4096, 1, 0), (5000, 2, 0), (9000, 3, 0)]);
    }

    #[test]
    fn next_cycle_reports_the_earliest_pending_entry() {
        let mut q = TimeQ::new();
        assert_eq!(q.next_cycle(), None);
        q.schedule(2000, 1, 0);
        assert_eq!(q.next_cycle(), Some(2000));
        q.schedule(12, 2, 0);
        assert_eq!(q.next_cycle(), Some(12));
        let _ = drain(&mut q, 500);
        assert_eq!(q.next_cycle(), Some(2000));
    }

    #[test]
    fn peek_and_pop_earliest_agree_with_pop_due_order() {
        let mut q = TimeQ::new();
        q.schedule(9, 5, 50);
        q.schedule(9, 3, 30);
        q.schedule(2000, 1, 10);
        let e = q.peek_earliest().unwrap();
        assert_eq!((e.cycle, e.key), (9, 3));
        assert_eq!(q.pop_earliest().map(|e| (e.cycle, e.key)), Some((9, 3)));
        assert_eq!(q.pop_earliest().map(|e| (e.cycle, e.key)), Some((9, 5)));
        assert_eq!(q.pop_earliest().map(|e| (e.cycle, e.key)), Some((2000, 1)));
        assert_eq!(q.pop_earliest(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn retain_filters_wheel_and_overflow() {
        let mut q = TimeQ::new();
        for k in 0..10 {
            q.schedule(10 + k, k, 0);
            q.schedule(100_000 + k, k, 0);
        }
        q.retain(|e| e.key % 2 == 0);
        assert_eq!(q.len(), 10);
        let keys: Vec<u64> = {
            let mut out = Vec::new();
            q.pop_due(200_000, &mut out);
            out.iter().map(|e| e.key).collect()
        };
        assert_eq!(keys, vec![0, 2, 4, 6, 8, 0, 2, 4, 6, 8]);
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = TimeQ::new();
        q.schedule(5, 1, 0);
        q.schedule(100_000, 2, 0);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_cycle(), None);
        // Still usable after a clear (re-anchored at cycle 0).
        q.schedule(7, 3, 0);
        assert_eq!(drain(&mut q, 7), vec![(7, 3, 0)]);
        assert_eq!(drain(&mut q, 200_000), vec![]);
    }

    #[test]
    fn iter_visits_wheel_and_overflow_entries() {
        let mut q = TimeQ::new();
        q.schedule(5, 1, 0);
        q.schedule(6, 2, 0);
        q.schedule(500_000, 3, 0);
        let mut keys: Vec<u64> = q.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn entries_at_exactly_the_wheel_horizon_ride_overflow_and_hand_back() {
        let mut q = TimeQ::new();
        // `base + WHEEL_SLOTS` is the first cycle the wheel cannot
        // hold: it must go to the overflow heap, not wrap into slot 0
        // (which currently means "cycle base").
        q.schedule(WHEEL_SLOTS as u64, 1, 10);
        assert_eq!(q.next_cycle(), Some(WHEEL_SLOTS as u64));
        assert_eq!(drain(&mut q, WHEEL_SLOTS as u64 - 1), vec![]);
        // Draining advances the base, so the horizon entry folds back
        // into the wheel and pops at its exact cycle.
        assert_eq!(drain(&mut q, WHEEL_SLOTS as u64), vec![(WHEEL_SLOTS as u64, 1, 10)]);
        assert!(q.is_empty());

        // Same handoff with a non-zero base: advance the base first,
        // then park an entry exactly one wheel length ahead of it.
        let mut q = TimeQ::new();
        q.schedule(500, 1, 0);
        assert_eq!(drain(&mut q, 500), vec![(500, 1, 0)]);
        let horizon = 500 + WHEEL_SLOTS as u64;
        q.schedule(horizon, 2, 20); // exactly base + WHEEL_SLOTS
        q.schedule(horizon - 1, 3, 30); // last in-wheel slot
        assert_eq!(q.next_cycle(), Some(horizon - 1));
        assert_eq!(
            drain(&mut q, horizon),
            vec![(horizon - 1, 3, 30), (horizon, 2, 20)],
            "horizon entry hands back from overflow in cycle order"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn reinsertion_during_a_pop_cycle_pops_in_the_same_cycle() {
        // The engine's pattern: pop the events due at `now`, process
        // them, and processing schedules follow-up events at `now`
        // itself (late clamp) or `now + 1`. A same-cycle re-insertion
        // must come out of the very next pop at the same `now`, not be
        // deferred a cycle or dropped by the drained-past logic.
        let mut q = TimeQ::new();
        q.schedule(10, 1, 0);
        assert_eq!(drain(&mut q, 10), vec![(10, 1, 0)]);
        // Re-insert at the already-drained cycle 10 (and one behind
        // it): both clamp into the base slot and pop immediately.
        q.schedule(10, 2, 0);
        q.schedule(9, 3, 0);
        assert_eq!(drain(&mut q, 10), vec![(9, 3, 0), (10, 2, 0)]);
        // A chain of same-cycle re-insertions keeps popping at `now`,
        // in insertion order for duplicate keys.
        for i in 0..4 {
            q.schedule(10, 7, i);
            assert_eq!(drain(&mut q, 10), vec![(10, 7, i)]);
        }
        assert!(q.is_empty());
        // And the base never trailed: a next-cycle entry still pops on
        // time.
        q.schedule(11, 1, 0);
        assert_eq!(q.next_cycle(), Some(11));
        assert_eq!(drain(&mut q, 11), vec![(11, 1, 0)]);
    }

    #[test]
    fn heap_equivalence_at_the_wheel_boundary() {
        // Seeded property test against the BinaryHeap oracle with
        // offsets concentrated at `now + WHEEL_SLOTS ± 2`, so every
        // drain exercises the wheel/overflow handoff both ways.
        let mut seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut q = TimeQ::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut tick = 0u64;
        for round in 0..3000u64 {
            for _ in 0..(rng() % 3) {
                let w = WHEEL_SLOTS as u64;
                let cycle = match rng() % 8 {
                    0 => now + w - 2,
                    1 => now + w - 1,
                    2 => now + w, // exactly the horizon
                    3 => now + w + 1,
                    4 => now + w + 2,
                    5 => now + rng() % 4, // near term, same slots soon
                    _ => now + 1 + rng() % (w / 2),
                };
                let key = rng() % 8;
                tick += 1;
                q.schedule(cycle, key, tick);
                heap.push(Reverse((cycle, key, tick)));
            }
            // Mostly small steps; occasionally a jump of about one
            // wheel length so the base crosses the wrap point.
            now += if round % 17 == 0 { WHEEL_SLOTS as u64 - 3 + rng() % 6 } else { rng() % 4 };
            let mut got = Vec::new();
            q.pop_due(now, &mut got);
            let mut want = Vec::new();
            while let Some(&Reverse((c, ..))) = heap.peek() {
                if c > now {
                    break;
                }
                let Reverse((_, key, t)) = heap.pop().unwrap();
                want.push((key, t));
            }
            let got: Vec<(u64, u64)> = got.iter().map(|e| (e.key, e.data)).collect();
            assert_eq!(got, want, "divergence at now={now}");
            assert_eq!(q.len(), heap.len(), "length divergence at now={now}");
        }
    }

    #[test]
    fn heap_equivalence_under_random_traffic() {
        // Differential test against the BinaryHeap formulation the
        // engine used before: identical pop sequences under a stream of
        // interleaved schedules and drains (deterministic xorshift).
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut q = TimeQ::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut tick = 0u64;
        for _ in 0..2000 {
            for _ in 0..(rng() % 4) {
                // Mostly near-future, occasionally far-future, rarely
                // in the past (clamped).
                let r = rng();
                let cycle = match r % 10 {
                    0 => now.saturating_sub(rng() % 8),
                    1..=7 => now + rng() % 40,
                    _ => now + 1000 + rng() % 5000,
                };
                let key = rng() % 16;
                tick += 1;
                q.schedule(cycle, key, tick);
                // The heap keeps the original cycle even for entries in
                // the past: they sort to the front and pop on the next
                // drain, exactly like the wheel's base-slot clamp.
                heap.push(Reverse((cycle, key, tick)));
            }
            now += rng() % 6;
            let mut got = Vec::new();
            q.pop_due(now, &mut got);
            let mut want = Vec::new();
            while let Some(&Reverse((c, ..))) = heap.peek() {
                if c > now {
                    break;
                }
                let Reverse((_, key, t)) = heap.pop().unwrap();
                want.push((key, t));
            }
            let got: Vec<(u64, u64)> = got.iter().map(|e| (e.key, e.data)).collect();
            assert_eq!(got, want, "divergence at now={now}");
        }
    }
}
