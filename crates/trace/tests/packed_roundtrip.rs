//! Property test: packing a [`TraceOp`] sequence into the compact
//! [`PackedTrace`] representation and unpacking it again is lossless,
//! for arbitrary (valid) operand/memory/branch shapes.

use mcl_isa::op::Opcode;
use mcl_isa::reg::ArchReg;
use mcl_testutil::{check_cases, Rng};
use mcl_trace::{BranchInfo, PackedDecodeError, PackedTrace, TraceOp, TraceSource};

fn random_reg(rng: &mut Rng) -> Option<ArchReg> {
    if rng.flip() {
        None
    } else {
        Some(ArchReg::from_dense_index(rng.range(0, 64)))
    }
}

/// A random but *valid* trace op: sequential `seq`, and never both a
/// memory address and a branch record (the VM never produces both, and
/// the packed form rejects it).
fn random_op(rng: &mut Rng, seq: u64) -> TraceOp {
    let op = *rng.pick(Opcode::all());
    let mem_addr = if rng.flip() { Some(rng.next_u64()) } else { None };
    let branch = if mem_addr.is_none() && rng.flip() {
        Some(BranchInfo {
            taken: rng.flip(),
            target_pc: rng.next_u64(),
            conditional: rng.flip(),
        })
    } else {
        None
    };
    TraceOp {
        seq,
        pc: rng.next_u64(),
        op,
        dest: random_reg(rng),
        srcs: [random_reg(rng), random_reg(rng)],
        mem_addr,
        branch,
        sched_inserted: rng.flip(),
    }
}

#[test]
fn packed_trace_round_trips_random_sequences() {
    check_cases(200, |rng| {
        let len = rng.range(0, 64);
        let ops: Vec<TraceOp> =
            (0..len as u64).map(|seq| random_op(rng, seq)).collect();

        let packed = PackedTrace::from_ops(&ops);
        assert_eq!(packed.len(), ops.len());

        // Element-wise through both the packed accessor and the
        // TraceSource view, plus the bulk conversion.
        for (i, want) in ops.iter().enumerate() {
            assert_eq!(&packed.get(i), want, "op #{i}");
            assert_eq!(&TraceSource::get(&packed, i), want, "op #{i} via TraceSource");
        }
        assert_eq!(packed.to_ops(), ops);
    });
}

#[test]
fn wire_encoding_round_trips_random_sequences() {
    check_cases(200, |rng| {
        let len = rng.range(0, 64);
        let ops: Vec<TraceOp> = (0..len as u64).map(|seq| random_op(rng, seq)).collect();
        let packed = PackedTrace::from_ops(&ops);
        let bytes = packed.to_bytes();
        assert_eq!(bytes.len(), ops.len() * PackedTrace::WIRE_BYTES_PER_OP);
        let decoded = PackedTrace::from_bytes(&bytes).expect("own encoding decodes");
        assert_eq!(decoded, packed);
        assert_eq!(decoded.to_ops(), ops);
    });
}

/// Mutation property: flipping any single byte of a serialized trace
/// (or truncating it) either still decodes to a *valid* trace — every
/// record unpackable without panicking — or fails with a typed
/// [`PackedDecodeError`]. Decoding must never panic on corrupt input.
#[test]
fn decode_survives_arbitrary_single_byte_corruption() {
    check_cases(300, |rng| {
        let len = rng.range(1, 32);
        let ops: Vec<TraceOp> = (0..len as u64).map(|seq| random_op(rng, seq)).collect();
        let mut bytes = PackedTrace::from_ops(&ops).to_bytes();

        if rng.flip() {
            // Flip one byte to an arbitrary new value.
            let pos = rng.range(0, bytes.len());
            let flip = 1 + rng.below(255) as u8;
            bytes[pos] ^= flip;
        } else {
            // Truncate to an arbitrary prefix.
            let keep = rng.range(0, bytes.len());
            bytes.truncate(keep);
            if keep % PackedTrace::WIRE_BYTES_PER_OP != 0 {
                assert_eq!(
                    PackedTrace::from_bytes(&bytes),
                    Err(PackedDecodeError::Truncated { len: keep })
                );
                return;
            }
        }

        match PackedTrace::from_bytes(&bytes) {
            // Validation accepted the mutation: every record must
            // actually be usable (this is the guarantee the simulator's
            // fetch loop relies on).
            Ok(trace) => {
                let _ = trace.to_ops();
            }
            Err(e) => {
                // Typed, displayable, and pointing at a real record.
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
        }
    });
}
