//! The generic instruction representation.

use std::fmt;

use mcl_isa::{InstrClass, Opcode};

use crate::program::BlockId;
use crate::vreg::RegName;

/// One instruction of a [`crate::Program`], generic over the register
/// name space `R` (live ranges for IL programs, architectural registers
/// for machine programs).
///
/// Operand conventions:
///
/// - A `None` source slot reads as zero (the hardwired zero register of
///   the machine form). Binary *integer* operations with `srcs[1] ==
///   None` use [`Instr::imm`] as their second operand instead (the Alpha
///   operate-with-literal form).
/// - Loads and stores compute their effective address as
///   `srcs[0] + imm`; the stored value of a store is `srcs[1]`.
/// - Control flow: direct branches and calls carry a static
///   [`Instr::target`] block; `jmp`/`ret` jump through `srcs[0]`
///   dynamically. A conditional branch falls through to the next block in
///   layout order when not taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instr<R> {
    /// The operation.
    pub op: Opcode,
    /// Destination register, if the opcode produces one.
    pub dest: Option<R>,
    /// Up to two register sources; `None` slots read as zero.
    pub srcs: [Option<R>; 2],
    /// Immediate operand (literal, address displacement, or shift count).
    pub imm: i64,
    /// Static control-flow target, for direct branches and calls.
    pub target: Option<BlockId>,
    /// Scheduler provenance: `true` for instructions the scheduling
    /// pass inserted (spill loads/stores for cross-cluster live-range
    /// splits) rather than the workload author. Carried through the
    /// trace so cycle-attribution can charge their cost to the
    /// scheduler.
    pub sched_inserted: bool,
}

impl<R: RegName> Instr<R> {
    /// Creates an instruction with no operands; callers fill in the
    /// fields they need. Prefer the [`crate::ProgramBuilder`] helpers.
    #[must_use]
    pub fn new(op: Opcode) -> Instr<R> {
        Instr { op, dest: None, srcs: [None, None], imm: 0, target: None, sched_inserted: false }
    }

    /// The Table 1 instruction class.
    #[must_use]
    pub fn class(&self) -> InstrClass {
        self.op.class()
    }

    /// Iterates over the registers this instruction reads (skipping zero
    /// registers, which carry no dependence).
    pub fn reads(&self) -> impl Iterator<Item = R> + '_ {
        self.srcs.iter().flatten().copied().filter(|r| !r.is_zero())
    }

    /// The register this instruction writes, if any (zero-register
    /// destinations are reported as `None`: the write is discarded).
    #[must_use]
    pub fn writes(&self) -> Option<R> {
        self.dest.filter(|r| !r.is_zero())
    }

    /// All registers named by the instruction (reads then write).
    pub fn named_regs(&self) -> impl Iterator<Item = R> + '_ {
        self.reads().chain(self.writes())
    }

    /// Whether this instruction ends a basic block.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        self.op.is_control_flow()
    }
}

impl<R: RegName> fmt::Display for Instr<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if let Some(d) = self.dest {
            sep(f)?;
            write!(f, "{d}")?;
        }
        for src in self.srcs.iter().flatten() {
            sep(f)?;
            write!(f, "{src}")?;
        }
        if self.imm != 0 || (self.srcs[1].is_none() && !self.op.is_control_flow()) {
            sep(f)?;
            write!(f, "#{}", self.imm)?;
        }
        if let Some(t) = self.target {
            sep(f)?;
            write!(f, "-> {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vreg::Vreg;

    #[test]
    fn reads_skip_zero_registers() {
        use mcl_isa::ArchReg;
        let instr = Instr::<ArchReg> {
            op: Opcode::Addq,
            dest: Some(ArchReg::int(2)),
            srcs: [Some(ArchReg::ZERO), Some(ArchReg::int(4))],
            imm: 0,
            target: None,
            sched_inserted: false,
        };
        let reads: Vec<_> = instr.reads().collect();
        assert_eq!(reads, vec![ArchReg::int(4)]);
        assert_eq!(instr.writes(), Some(ArchReg::int(2)));
    }

    #[test]
    fn zero_destination_is_no_write() {
        use mcl_isa::ArchReg;
        let mut instr = Instr::<ArchReg>::new(Opcode::Addq);
        instr.dest = Some(ArchReg::ZERO);
        assert_eq!(instr.writes(), None);
    }

    #[test]
    fn display_is_readable() {
        let instr = Instr::<Vreg> {
            op: Opcode::Addq,
            dest: Some(Vreg::int(1)),
            srcs: [Some(Vreg::int(2)), None],
            imm: 5,
            target: None,
            sched_inserted: false,
        };
        assert_eq!(instr.to_string(), "addq v1, v2, #5");
    }

    #[test]
    fn terminators_are_control_flow() {
        assert!(Instr::<Vreg>::new(Opcode::Br).is_terminator());
        assert!(!Instr::<Vreg>::new(Opcode::Ldq).is_terminator());
    }
}
