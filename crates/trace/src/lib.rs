//! Intermediate-language program model and trace-generating virtual
//! machine.
//!
//! The paper's toolchain analysed ATOM-instrumented Alpha binaries "to
//! discover the data and control dependences between instructions, and
//! the live ranges these instructions read and write", then re-ran the
//! (rescheduled) binary under a trace-driven simulator. This crate plays
//! both roles for the reproduction:
//!
//! - [`program`] — programs as control-flow graphs of basic blocks whose
//!   instructions name either *live ranges* ([`Vreg`], the
//!   intermediate-language form consumed by the schedulers in
//!   `mcl-sched`) or *architectural registers*
//!   ([`mcl_isa::ArchReg`], the machine form consumed by the simulator).
//!   The two forms share one generic representation, [`Instr<R>`].
//! - [`builder`] — an ergonomic [`ProgramBuilder`] for authoring programs
//!   (used by the synthetic workloads and by tests).
//! - [`vm`] — a functional interpreter, [`Vm`], that executes a program
//!   with real data values, producing the dynamic instruction stream
//!   (the *trace*), an execution [`Profile`] (the per-block estimates the
//!   paper's local scheduler derives "from profiling the execution"), and
//!   the final architectural state (the golden model for testing).
//! - [`traceop`] — the per-dynamic-instruction record ([`TraceOp`])
//!   consumed by the cycle-level simulator in `mcl-core`.
//!
//! # Example
//!
//! ```
//! use mcl_isa::ArchReg;
//! use mcl_trace::{ProgramBuilder, Vm};
//!
//! // sum = 1 + 2, computed in architectural registers.
//! let mut b = ProgramBuilder::<ArchReg>::new("sum");
//! let entry = b.current_block();
//! let (r1, r2, r3) = (ArchReg::int(2), ArchReg::int(4), ArchReg::int(6));
//! b.lda(r1, 1);
//! b.lda(r2, 2);
//! b.addq(r3, r1, r2);
//! let program = b.finish().expect("valid program");
//! assert_eq!(program.blocks[entry.index()].instrs.len(), 3);
//!
//! let mut vm = Vm::new(&program);
//! let trace: Vec<_> = vm.by_ref().collect::<Result<_, _>>()?;
//! assert_eq!(trace.len(), 3);
//! assert_eq!(vm.reg(r3), 3);
//! # Ok::<(), mcl_trace::VmError>(())
//! ```

pub mod analysis;
pub mod asm;
pub mod builder;
pub mod instr;
pub mod packed;
pub mod profile;
pub mod program;
pub mod traceop;
pub mod vm;
pub mod vreg;

pub use asm::ParseError;
pub use builder::ProgramBuilder;
pub use instr::Instr;
pub use packed::{PackedDecodeError, PackedOp, PackedTrace, TraceSource};
pub use profile::Profile;
pub use program::{Block, BlockId, Layout, Program, ValidateError};
pub use traceop::{BranchInfo, TraceOp};
pub use vm::{Memory, Step, Vm, VmError};
pub use vreg::{RegName, Vreg};
