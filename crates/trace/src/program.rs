//! Programs: control-flow graphs of basic blocks, plus code layout.

use std::fmt;


use crate::instr::Instr;
use crate::vreg::RegName;

/// Identifies a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block identifier from a dense index.
    #[must_use]
    pub fn new(index: usize) -> BlockId {
        BlockId(u32::try_from(index).expect("block index fits in u32"))
    }

    /// The dense index of the block.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// One basic block: a label and a straight-line instruction sequence.
///
/// Only the final instruction may be control flow. A block whose final
/// instruction is not control flow *falls through* to the next block in
/// layout order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block<R> {
    /// Human-readable label, for diagnostics and listings.
    pub label: String,
    /// The instructions, in schedule (fetch) order.
    pub instrs: Vec<Instr<R>>,
}

/// A complete program: blocks in layout order (block 0 is the entry),
/// initial register values, and an initial memory image.
///
/// Programs come in two forms sharing this one type: *IL programs*
/// (`Program<Vreg>`, instructions name live ranges) and *machine
/// programs* (`Program<ArchReg>`). The scheduling pipeline in `mcl-sched`
/// lowers the former to the latter.
#[derive(Debug, Clone, PartialEq)]
pub struct Program<R> {
    /// Program name, for reports.
    pub name: String,
    /// Basic blocks in layout order; execution starts at block 0.
    pub blocks: Vec<Block<R>>,
    /// Registers to initialise before execution (all others start at 0).
    pub reg_init: Vec<(R, u64)>,
    /// 64-bit words to place in memory before execution, as
    /// (byte address, value) pairs; addresses must be 8-byte aligned.
    pub mem_init: Vec<(u64, u64)>,
    /// Registers designated as *global-register candidates* for the
    /// multicluster schedulers (the paper designates "the live ranges
    /// associated with the stack pointer and the global pointer";
    /// Section 3.1 step 3). Ignored by the VM.
    pub global_candidates: Vec<R>,
}

/// Errors produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program has no blocks.
    Empty,
    /// An instruction's destination is missing, spurious, or in the wrong
    /// bank for its opcode.
    BadDest { block: BlockId, index: usize, detail: String },
    /// An instruction's source is spurious or in the wrong bank.
    BadSrc { block: BlockId, index: usize, detail: String },
    /// A control-flow instruction appears before the end of its block.
    ControlFlowMidBlock { block: BlockId, index: usize },
    /// A direct branch or call is missing its target, or a non-branch has
    /// one.
    BadTarget { block: BlockId, index: usize, detail: String },
    /// A branch target names a nonexistent block.
    TargetOutOfRange { block: BlockId, index: usize, target: BlockId },
    /// An entry in [`Program::mem_init`] is not 8-byte aligned.
    UnalignedMemInit { addr: u64 },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "program has no blocks"),
            ValidateError::BadDest { block, index, detail } => {
                write!(f, "{block}[{index}]: bad destination: {detail}")
            }
            ValidateError::BadSrc { block, index, detail } => {
                write!(f, "{block}[{index}]: bad source: {detail}")
            }
            ValidateError::ControlFlowMidBlock { block, index } => {
                write!(f, "{block}[{index}]: control flow before end of block")
            }
            ValidateError::BadTarget { block, index, detail } => {
                write!(f, "{block}[{index}]: bad target: {detail}")
            }
            ValidateError::TargetOutOfRange { block, index, target } => {
                write!(f, "{block}[{index}]: target {target} out of range")
            }
            ValidateError::UnalignedMemInit { addr } => {
                write!(f, "mem_init address {addr:#x} not 8-byte aligned")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl<R: RegName> Program<R> {
    /// Checks the structural invariants the VM and simulator rely on.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`ValidateError`].
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.blocks.is_empty() {
            return Err(ValidateError::Empty);
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            let bid = BlockId::new(bi);
            for (ii, instr) in block.instrs.iter().enumerate() {
                self.validate_instr(bid, ii, instr, ii + 1 == block.instrs.len())?;
            }
        }
        for &(addr, _) in &self.mem_init {
            if addr % 8 != 0 {
                return Err(ValidateError::UnalignedMemInit { addr });
            }
        }
        Ok(())
    }

    fn validate_instr(
        &self,
        block: BlockId,
        index: usize,
        instr: &Instr<R>,
        is_last: bool,
    ) -> Result<(), ValidateError> {
        let op = instr.op;
        // Destination shape.
        match (op.dest_bank(), instr.dest) {
            (Some(bank), Some(dest)) if dest.bank() != bank => {
                return Err(ValidateError::BadDest {
                    block,
                    index,
                    detail: format!("{op} writes {bank} but dest {dest} is {}", dest.bank()),
                });
            }
            (Some(_), None) => {
                return Err(ValidateError::BadDest {
                    block,
                    index,
                    detail: format!("{op} requires a destination"),
                });
            }
            (None, Some(dest)) => {
                return Err(ValidateError::BadDest {
                    block,
                    index,
                    detail: format!("{op} takes no destination but has {dest}"),
                });
            }
            _ => {}
        }
        // Source shapes.
        for (slot, (expected, actual)) in
            op.src_banks().into_iter().zip(instr.srcs).enumerate()
        {
            match (expected, actual) {
                (Some(bank), Some(src)) if src.bank() != bank => {
                    return Err(ValidateError::BadSrc {
                        block,
                        index,
                        detail: format!(
                            "{op} source {slot} is {bank} but {src} is {}",
                            src.bank()
                        ),
                    });
                }
                (None, Some(src)) => {
                    return Err(ValidateError::BadSrc {
                        block,
                        index,
                        detail: format!("{op} has no source {slot} but names {src}"),
                    });
                }
                _ => {}
            }
        }
        // Control-flow placement and targets.
        if op.is_control_flow() && !is_last {
            return Err(ValidateError::ControlFlowMidBlock { block, index });
        }
        let needs_target = matches!(
            op,
            mcl_isa::Opcode::Br
                | mcl_isa::Opcode::Beq
                | mcl_isa::Opcode::Bne
                | mcl_isa::Opcode::Blt
                | mcl_isa::Opcode::Bge
                | mcl_isa::Opcode::Jsr
        );
        match (needs_target, instr.target) {
            (true, None) => {
                return Err(ValidateError::BadTarget {
                    block,
                    index,
                    detail: format!("{op} requires a static target"),
                });
            }
            (false, Some(_)) => {
                return Err(ValidateError::BadTarget {
                    block,
                    index,
                    detail: format!("{op} takes no static target"),
                });
            }
            (true, Some(target)) if target.index() >= self.blocks.len() => {
                return Err(ValidateError::TargetOutOfRange { block, index, target });
            }
            _ => {}
        }
        Ok(())
    }

    /// The total number of static instructions.
    #[must_use]
    pub fn static_len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Computes the code layout (instruction addresses).
    #[must_use]
    pub fn layout(&self) -> Layout {
        Layout::of(self)
    }

    /// A disassembly-style listing, for diagnostics.
    #[must_use]
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let layout = self.layout();
        let mut out = String::new();
        for (bi, block) in self.blocks.iter().enumerate() {
            let bid = BlockId::new(bi);
            let _ = writeln!(out, "{bid} <{}>:", block.label);
            for (ii, instr) in block.instrs.iter().enumerate() {
                let _ = writeln!(out, "  {:#08x}  {instr}", layout.pc_of(bid, ii));
            }
        }
        out
    }
}

/// The code layout of a program: every instruction occupies four bytes,
/// blocks are laid out contiguously in block order starting at
/// [`Layout::CODE_BASE`].
///
/// The layout provides instruction addresses for the instruction cache
/// and the PC values recorded in traces, and maps PCs back to program
/// locations for indirect jumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    block_starts: Vec<u64>,
    total_instrs: usize,
}

impl Layout {
    /// Base address of the code segment.
    pub const CODE_BASE: u64 = 0x0001_0000;
    /// Bytes per instruction.
    pub const INSTR_BYTES: u64 = 4;

    fn of<R>(program: &Program<R>) -> Layout {
        let mut block_starts = Vec::with_capacity(program.blocks.len());
        let mut pc = Layout::CODE_BASE;
        let mut total = 0usize;
        for block in &program.blocks {
            block_starts.push(pc);
            pc += block.instrs.len() as u64 * Layout::INSTR_BYTES;
            total += block.instrs.len();
        }
        Layout { block_starts, total_instrs: total }
    }

    /// The address of instruction `index` of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn pc_of(&self, block: BlockId, index: usize) -> u64 {
        self.block_starts[block.index()] + index as u64 * Layout::INSTR_BYTES
    }

    /// Maps an address back to `(block, instruction index)`.
    ///
    /// Returns `None` for addresses outside the code segment or not on an
    /// instruction boundary.
    #[must_use]
    pub fn loc_of(&self, pc: u64) -> Option<(BlockId, usize)> {
        if pc < Layout::CODE_BASE || !pc.is_multiple_of(Layout::INSTR_BYTES) {
            return None;
        }
        let end = Layout::CODE_BASE + self.total_instrs as u64 * Layout::INSTR_BYTES;
        if pc >= end {
            return None;
        }
        // block_starts is sorted; find the block containing pc.
        let bi = match self.block_starts.binary_search(&pc) {
            Ok(exact) => {
                // Skip empty blocks that share a start address.
                let mut bi = exact;
                while bi + 1 < self.block_starts.len() && self.block_starts[bi + 1] == pc {
                    bi += 1;
                }
                bi
            }
            Err(insert) => insert - 1,
        };
        let index = ((pc - self.block_starts[bi]) / Layout::INSTR_BYTES) as usize;
        Some((BlockId::new(bi), index))
    }

    /// The total number of instructions laid out.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total_instrs
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_instrs == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vreg::Vreg;
    use mcl_isa::Opcode;

    fn block(label: &str, instrs: Vec<Instr<Vreg>>) -> Block<Vreg> {
        Block { label: label.to_owned(), instrs }
    }

    fn lda(dest: Vreg, imm: i64) -> Instr<Vreg> {
        Instr { op: Opcode::Lda, dest: Some(dest), srcs: [None, None], imm, target: None, sched_inserted: false }
    }

    fn simple_program() -> Program<Vreg> {
        let v0 = Vreg::int(0);
        Program {
            name: "p".into(),
            blocks: vec![
                block("entry", vec![lda(v0, 1), lda(v0, 2)]),
                block("next", vec![lda(v0, 3)]),
            ],
            reg_init: vec![],
            mem_init: vec![],
            global_candidates: vec![],
        }
    }

    #[test]
    fn valid_program_validates() {
        assert_eq!(simple_program().validate(), Ok(()));
    }

    #[test]
    fn empty_program_is_rejected() {
        let p = Program::<Vreg> {
            name: "e".into(),
            blocks: vec![],
            reg_init: vec![],
            mem_init: vec![],
            global_candidates: vec![],
        };
        assert_eq!(p.validate(), Err(ValidateError::Empty));
    }

    #[test]
    fn missing_destination_is_rejected() {
        let mut p = simple_program();
        p.blocks[0].instrs[0].dest = None;
        assert!(matches!(p.validate(), Err(ValidateError::BadDest { .. })));
    }

    #[test]
    fn wrong_bank_destination_is_rejected() {
        let mut p = simple_program();
        p.blocks[0].instrs[0].dest = Some(Vreg::fp(0));
        assert!(matches!(p.validate(), Err(ValidateError::BadDest { .. })));
    }

    #[test]
    fn control_flow_mid_block_is_rejected() {
        let mut p = simple_program();
        p.blocks[0].instrs[0] = Instr {
            op: Opcode::Br,
            dest: None,
            srcs: [None, None],
            imm: 0,
            target: Some(BlockId::new(1)),
            sched_inserted: false,
        };
        assert!(matches!(p.validate(), Err(ValidateError::ControlFlowMidBlock { .. })));
    }

    #[test]
    fn branch_without_target_is_rejected() {
        let mut p = simple_program();
        p.blocks[1].instrs.push(Instr {
            op: Opcode::Br,
            dest: None,
            srcs: [None, None],
            imm: 0,
            target: None,
            sched_inserted: false,
        });
        assert!(matches!(p.validate(), Err(ValidateError::BadTarget { .. })));
    }

    #[test]
    fn branch_target_out_of_range_is_rejected() {
        let mut p = simple_program();
        p.blocks[1].instrs.push(Instr {
            op: Opcode::Br,
            dest: None,
            srcs: [None, None],
            imm: 0,
            target: Some(BlockId::new(99)),
            sched_inserted: false,
        });
        assert!(matches!(p.validate(), Err(ValidateError::TargetOutOfRange { .. })));
    }

    #[test]
    fn unaligned_mem_init_is_rejected() {
        let mut p = simple_program();
        p.mem_init.push((3, 7));
        assert!(matches!(p.validate(), Err(ValidateError::UnalignedMemInit { addr: 3 })));
    }

    #[test]
    fn layout_addresses_are_contiguous() {
        let p = simple_program();
        let layout = p.layout();
        assert_eq!(layout.len(), 3);
        assert_eq!(layout.pc_of(BlockId::new(0), 0), Layout::CODE_BASE);
        assert_eq!(layout.pc_of(BlockId::new(0), 1), Layout::CODE_BASE + 4);
        assert_eq!(layout.pc_of(BlockId::new(1), 0), Layout::CODE_BASE + 8);
    }

    #[test]
    fn layout_roundtrips_pc_to_location() {
        let p = simple_program();
        let layout = p.layout();
        for (bi, block) in p.blocks.iter().enumerate() {
            for ii in 0..block.instrs.len() {
                let bid = BlockId::new(bi);
                let pc = layout.pc_of(bid, ii);
                assert_eq!(layout.loc_of(pc), Some((bid, ii)));
            }
        }
        assert_eq!(layout.loc_of(Layout::CODE_BASE - 4), None);
        assert_eq!(layout.loc_of(Layout::CODE_BASE + 12), None);
        assert_eq!(layout.loc_of(Layout::CODE_BASE + 1), None);
    }

    #[test]
    fn listing_mentions_every_block() {
        let p = simple_program();
        let listing = p.listing();
        assert!(listing.contains("bb0 <entry>:"));
        assert!(listing.contains("bb1 <next>:"));
        assert!(listing.contains("lda"));
    }
}
