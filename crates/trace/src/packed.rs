//! Compact trace records for the simulator's fetch/dispatch loop.
//!
//! A [`TraceOp`] is the lossless, ergonomic view of one dynamic
//! instruction (~72 bytes: `seq`, three `Option<ArchReg>`, an
//! `Option<u64>` address, an `Option<BranchInfo>`). The cycle-level
//! simulator streams millions of them, so `mcl-bench` stores traces as
//! [`PackedTrace`]s instead: 24-byte [`PackedOp`] records that drop the
//! sequence number (it equals the record's index), encode registers as
//! dense-index bytes with a sentinel, and fold the memory-address /
//! branch-outcome presence into flag bits. The paper's own methodology
//! (Section 4.1, ATOM trace-driven simulation) generates each trace once
//! and replays it under many machine configurations — the packed form is
//! what makes holding those shared traces cheap.
//!
//! [`TraceSource`] abstracts over the two storages so the simulator's
//! dispatch loop monomorphizes over either without an intermediate copy.
//!
//! # Invariant
//!
//! A packed record has one 64-bit auxiliary slot shared by the memory
//! address and the branch target, so an op may carry `mem_addr` *or*
//! `branch`, not both. The VM guarantees this (loads/stores are not
//! control flow); [`PackedTrace::push`] panics otherwise.

use mcl_isa::{ArchReg, Opcode};

use crate::traceop::{BranchInfo, TraceOp};

/// Register-byte sentinel meaning "no register".
const NO_REG: u8 = 0xFF;

/// Flag bit: the auxiliary word holds a memory address.
const HAS_MEM: u8 = 1 << 0;
/// Flag bit: the auxiliary word holds a branch target.
const HAS_BRANCH: u8 = 1 << 1;
/// Flag bit: the branch was taken.
const TAKEN: u8 = 1 << 2;
/// Flag bit: the branch is conditional (predictor-visible).
const CONDITIONAL: u8 = 1 << 3;

/// One packed dynamic instruction: 24 bytes instead of [`TraceOp`]'s ~72.
///
/// The sequence number is implicit (the record's index in its
/// [`PackedTrace`]); registers are [`ArchReg::dense_index`] bytes with
/// `0xFF` for "none"; the memory address and branch target share one
/// auxiliary word discriminated by flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedOp {
    pc: u64,
    /// Memory address (`HAS_MEM`), branch target (`HAS_BRANCH`), or 0.
    aux: u64,
    op: u8,
    dest: u8,
    src0: u8,
    src1: u8,
    flags: u8,
}

impl PackedOp {
    /// Packs a [`TraceOp`], discarding its sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the op carries both a memory address and a branch
    /// outcome (see the [module invariant](self)).
    #[must_use]
    pub fn pack(op: &TraceOp) -> PackedOp {
        let mut flags = 0;
        let aux = match (op.mem_addr, op.branch) {
            (Some(addr), None) => {
                flags |= HAS_MEM;
                addr
            }
            (None, Some(b)) => {
                flags |= HAS_BRANCH;
                if b.taken {
                    flags |= TAKEN;
                }
                if b.conditional {
                    flags |= CONDITIONAL;
                }
                b.target_pc
            }
            (None, None) => 0,
            (Some(_), Some(_)) => {
                panic!("trace op at pc {:#x} has both a memory address and a branch", op.pc)
            }
        };
        PackedOp {
            pc: op.pc,
            aux,
            op: op.op.code(),
            dest: pack_reg(op.dest),
            src0: pack_reg(op.srcs[0]),
            src1: pack_reg(op.srcs[1]),
            flags,
        }
    }

    /// Unpacks into a [`TraceOp`] with the given sequence number.
    #[must_use]
    pub fn unpack(&self, seq: u64) -> TraceOp {
        let (mem_addr, branch) = if self.flags & HAS_MEM != 0 {
            (Some(self.aux), None)
        } else if self.flags & HAS_BRANCH != 0 {
            let info = BranchInfo {
                taken: self.flags & TAKEN != 0,
                target_pc: self.aux,
                conditional: self.flags & CONDITIONAL != 0,
            };
            (None, Some(info))
        } else {
            (None, None)
        };
        TraceOp {
            seq,
            pc: self.pc,
            op: Opcode::from_code(self.op).expect("packed records hold valid opcode bytes"),
            dest: unpack_reg(self.dest),
            srcs: [unpack_reg(self.src0), unpack_reg(self.src1)],
            mem_addr,
            branch,
        }
    }
}

fn pack_reg(reg: Option<ArchReg>) -> u8 {
    match reg {
        Some(r) => r.dense_index() as u8,
        None => NO_REG,
    }
}

fn unpack_reg(byte: u8) -> Option<ArchReg> {
    if byte == NO_REG {
        None
    } else {
        Some(ArchReg::from_dense_index(usize::from(byte)))
    }
}

/// An immutable-after-build dynamic instruction stream in packed form.
///
/// # Example
///
/// ```
/// use mcl_isa::{ArchReg, Opcode};
/// use mcl_trace::{PackedTrace, TraceOp, TraceSource};
///
/// let op = TraceOp {
///     seq: 0,
///     pc: 0x1000,
///     op: Opcode::Addq,
///     dest: Some(ArchReg::int(3)),
///     srcs: [Some(ArchReg::int(1)), Some(ArchReg::int(2))],
///     mem_addr: None,
///     branch: None,
/// };
/// let trace = PackedTrace::from_ops(&[op]);
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.get(0), op);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedTrace {
    ops: Vec<PackedOp>,
}

impl PackedTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> PackedTrace {
        PackedTrace::default()
    }

    /// An empty trace with room for `capacity` records.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> PackedTrace {
        PackedTrace { ops: Vec::with_capacity(capacity) }
    }

    /// Packs a whole slice (sequence numbers must equal indices, as VM
    /// traces guarantee).
    #[must_use]
    pub fn from_ops(ops: &[TraceOp]) -> PackedTrace {
        let mut trace = PackedTrace::with_capacity(ops.len());
        for op in ops {
            trace.push(op);
        }
        trace
    }

    /// Appends one op (its `seq` becomes implicit and must equal
    /// [`PackedTrace::len`] at the time of the push).
    ///
    /// # Panics
    ///
    /// Panics if the op violates the [module invariant](self).
    pub fn push(&mut self, op: &TraceOp) {
        debug_assert_eq!(op.seq, self.ops.len() as u64, "trace seq must equal its index");
        self.ops.push(PackedOp::pack(op));
    }

    /// The number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op at `index`, unpacked (with `seq == index`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> TraceOp {
        self.ops[index].unpack(index as u64)
    }

    /// Iterates over the unpacked ops in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = TraceOp> + '_ {
        self.ops.iter().enumerate().map(|(i, op)| op.unpack(i as u64))
    }

    /// Unpacks the whole trace (for tests and tools wanting the fat
    /// form).
    #[must_use]
    pub fn to_ops(&self) -> Vec<TraceOp> {
        self.iter().collect()
    }

    /// Bytes per stored record (24, vs [`TraceOp`]'s ~72).
    #[must_use]
    pub fn bytes_per_op() -> usize {
        std::mem::size_of::<PackedOp>()
    }
}

/// A random-access dynamic instruction stream the simulator can fetch
/// from: a fat [`TraceOp`] slice or a [`PackedTrace`].
pub trait TraceSource {
    /// The number of dynamic instructions.
    fn len(&self) -> usize;

    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The op at `index` (with its sequence number materialized).
    fn get(&self, index: usize) -> TraceOp;
}

impl TraceSource for [TraceOp] {
    fn len(&self) -> usize {
        <[TraceOp]>::len(self)
    }

    #[inline]
    fn get(&self, index: usize) -> TraceOp {
        self[index]
    }
}

impl TraceSource for PackedTrace {
    fn len(&self) -> usize {
        PackedTrace::len(self)
    }

    #[inline]
    fn get(&self, index: usize) -> TraceOp {
        PackedTrace::get(self, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_records_are_24_bytes() {
        assert_eq!(PackedTrace::bytes_per_op(), 24);
    }

    fn branch_op(seq: u64) -> TraceOp {
        TraceOp {
            seq,
            pc: 0x2000,
            op: Opcode::Bne,
            dest: None,
            srcs: [Some(ArchReg::int(5)), None],
            mem_addr: None,
            branch: Some(BranchInfo { taken: true, target_pc: 0x1000, conditional: true }),
        }
    }

    #[test]
    fn branch_and_memory_ops_round_trip() {
        let ops = [
            TraceOp {
                seq: 0,
                pc: 0x1000,
                op: Opcode::Ldt,
                dest: Some(ArchReg::fp(7)),
                srcs: [Some(ArchReg::int(30)), None],
                mem_addr: Some(0x9008),
                branch: None,
            },
            branch_op(1),
        ];
        let trace = PackedTrace::from_ops(&ops);
        assert_eq!(trace.to_ops(), ops);
    }

    #[test]
    fn sentinel_registers_survive() {
        // r0 and f31-adjacent dense indices must not collide with the
        // sentinel; None must come back as None.
        let op = TraceOp {
            seq: 0,
            pc: 0,
            op: Opcode::Br,
            dest: None,
            srcs: [None, None],
            mem_addr: None,
            branch: Some(BranchInfo { taken: true, target_pc: 0, conditional: false }),
        };
        assert_eq!(PackedTrace::from_ops(&[op]).get(0), op);
    }

    #[test]
    #[should_panic(expected = "both a memory address and a branch")]
    fn mem_plus_branch_is_rejected() {
        let mut op = branch_op(0);
        op.mem_addr = Some(0x10);
        let _ = PackedOp::pack(&op);
    }

    #[test]
    fn trace_source_views_agree() {
        let ops = vec![branch_op(0), branch_op(1)];
        let packed = PackedTrace::from_ops(&ops);
        assert_eq!(TraceSource::len(&packed), TraceSource::len(ops.as_slice()));
        for i in 0..ops.len() {
            assert_eq!(TraceSource::get(&packed, i), TraceSource::get(ops.as_slice(), i));
        }
    }
}
