//! Compact trace records for the simulator's fetch/dispatch loop.
//!
//! A [`TraceOp`] is the lossless, ergonomic view of one dynamic
//! instruction (~72 bytes: `seq`, three `Option<ArchReg>`, an
//! `Option<u64>` address, an `Option<BranchInfo>`). The cycle-level
//! simulator streams millions of them, so `mcl-bench` stores traces as
//! [`PackedTrace`]s instead: 24-byte [`PackedOp`] records that drop the
//! sequence number (it equals the record's index), encode registers as
//! dense-index bytes with a sentinel, and fold the memory-address /
//! branch-outcome presence into flag bits. The paper's own methodology
//! (Section 4.1, ATOM trace-driven simulation) generates each trace once
//! and replays it under many machine configurations — the packed form is
//! what makes holding those shared traces cheap.
//!
//! [`TraceSource`] abstracts over the two storages so the simulator's
//! dispatch loop monomorphizes over either without an intermediate copy.
//!
//! # Invariant
//!
//! A packed record has one 64-bit auxiliary slot shared by the memory
//! address and the branch target, so an op may carry `mem_addr` *or*
//! `branch`, not both. The VM guarantees this (loads/stores are not
//! control flow); [`PackedTrace::push`] panics otherwise.

use std::fmt;

use mcl_isa::{reg::REGS_PER_BANK, ArchReg, Opcode};

use crate::traceop::{BranchInfo, TraceOp};

/// Register-byte sentinel meaning "no register".
const NO_REG: u8 = 0xFF;

/// Dense register indices run `0..2 * REGS_PER_BANK`.
const DENSE_REGS: u8 = 2 * REGS_PER_BANK;

/// Flag bit: the auxiliary word holds a memory address.
const HAS_MEM: u8 = 1 << 0;
/// Flag bit: the auxiliary word holds a branch target.
const HAS_BRANCH: u8 = 1 << 1;
/// Flag bit: the branch was taken.
const TAKEN: u8 = 1 << 2;
/// Flag bit: the branch is conditional (predictor-visible).
const CONDITIONAL: u8 = 1 << 3;
/// Flag bit: the instruction was inserted by the scheduling pass
/// (spill code), not the workload — see
/// [`crate::TraceOp::sched_inserted`].
const SCHED_INSERTED: u8 = 1 << 4;

/// One packed dynamic instruction: 24 bytes instead of [`TraceOp`]'s ~72.
///
/// The sequence number is implicit (the record's index in its
/// [`PackedTrace`]); registers are [`ArchReg::dense_index`] bytes with
/// `0xFF` for "none"; the memory address and branch target share one
/// auxiliary word discriminated by flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedOp {
    pc: u64,
    /// Memory address (`HAS_MEM`), branch target (`HAS_BRANCH`), or 0.
    aux: u64,
    op: u8,
    dest: u8,
    src0: u8,
    src1: u8,
    flags: u8,
}

impl PackedOp {
    /// Packs a [`TraceOp`], discarding its sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the op carries both a memory address and a branch
    /// outcome (see the [module invariant](self)).
    #[must_use]
    pub fn pack(op: &TraceOp) -> PackedOp {
        let mut flags = 0;
        let aux = match (op.mem_addr, op.branch) {
            (Some(addr), None) => {
                flags |= HAS_MEM;
                addr
            }
            (None, Some(b)) => {
                flags |= HAS_BRANCH;
                if b.taken {
                    flags |= TAKEN;
                }
                if b.conditional {
                    flags |= CONDITIONAL;
                }
                b.target_pc
            }
            (None, None) => 0,
            (Some(_), Some(_)) => {
                panic!("trace op at pc {:#x} has both a memory address and a branch", op.pc)
            }
        };
        if op.sched_inserted {
            flags |= SCHED_INSERTED;
        }
        PackedOp {
            pc: op.pc,
            aux,
            op: op.op.code(),
            dest: pack_reg(op.dest),
            src0: pack_reg(op.srcs[0]),
            src1: pack_reg(op.srcs[1]),
            flags,
        }
    }

    /// Unpacks into a [`TraceOp`] with the given sequence number.
    #[must_use]
    pub fn unpack(&self, seq: u64) -> TraceOp {
        let (mem_addr, branch) = if self.flags & HAS_MEM != 0 {
            (Some(self.aux), None)
        } else if self.flags & HAS_BRANCH != 0 {
            let info = BranchInfo {
                taken: self.flags & TAKEN != 0,
                target_pc: self.aux,
                conditional: self.flags & CONDITIONAL != 0,
            };
            (None, Some(info))
        } else {
            (None, None)
        };
        TraceOp {
            seq,
            pc: self.pc,
            op: Opcode::from_code(self.op).expect("packed records hold valid opcode bytes"),
            dest: unpack_reg(self.dest),
            srcs: [unpack_reg(self.src0), unpack_reg(self.src1)],
            mem_addr,
            branch,
            sched_inserted: self.flags & SCHED_INSERTED != 0,
        }
    }
}

/// Why a serialized trace failed to decode (see
/// [`PackedTrace::from_bytes`]).
///
/// Every field of a wire record is validated before a [`PackedOp`] is
/// built, so a corrupt input surfaces as one of these instead of a
/// panic deep inside the simulator's fetch loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedDecodeError {
    /// The byte stream is not a whole number of
    /// [`PackedTrace::WIRE_BYTES_PER_OP`]-byte records.
    Truncated {
        /// Total input length in bytes.
        len: usize,
    },
    /// A record's opcode byte names no [`Opcode`].
    BadOpcode {
        /// Record index.
        index: usize,
        /// The offending byte.
        code: u8,
    },
    /// A register byte is neither the "no register" sentinel nor a
    /// dense register index.
    BadRegister {
        /// Record index.
        index: usize,
        /// Which register slot (`"dest"`, `"src0"`, or `"src1"`).
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// The flag byte uses undefined bits or an impossible combination
    /// (memory and branch together, or branch-outcome bits without a
    /// branch).
    BadFlags {
        /// Record index.
        index: usize,
        /// The offending byte.
        flags: u8,
    },
    /// The auxiliary word is nonzero although the flags claim neither a
    /// memory address nor a branch target.
    BadAux {
        /// Record index.
        index: usize,
    },
}

impl fmt::Display for PackedDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedDecodeError::Truncated { len } => write!(
                f,
                "trace of {len} bytes is not a whole number of {}-byte records",
                PackedTrace::WIRE_BYTES_PER_OP
            ),
            PackedDecodeError::BadOpcode { index, code } => {
                write!(f, "record {index}: opcode byte {code:#04x} names no opcode")
            }
            PackedDecodeError::BadRegister { index, field, value } => {
                write!(f, "record {index}: {field} register byte {value:#04x} is out of range")
            }
            PackedDecodeError::BadFlags { index, flags } => {
                write!(f, "record {index}: flag byte {flags:#04x} is inconsistent")
            }
            PackedDecodeError::BadAux { index } => {
                write!(f, "record {index}: auxiliary word set without a memory or branch flag")
            }
        }
    }
}

impl std::error::Error for PackedDecodeError {}

fn check_reg_byte(
    index: usize,
    field: &'static str,
    value: u8,
) -> Result<(), PackedDecodeError> {
    if value == NO_REG || value < DENSE_REGS {
        Ok(())
    } else {
        Err(PackedDecodeError::BadRegister { index, field, value })
    }
}

fn pack_reg(reg: Option<ArchReg>) -> u8 {
    match reg {
        Some(r) => r.dense_index() as u8,
        None => NO_REG,
    }
}

fn unpack_reg(byte: u8) -> Option<ArchReg> {
    if byte == NO_REG {
        None
    } else {
        Some(ArchReg::from_dense_index(usize::from(byte)))
    }
}

/// An immutable-after-build dynamic instruction stream in packed form.
///
/// # Example
///
/// ```
/// use mcl_isa::{ArchReg, Opcode};
/// use mcl_trace::{PackedTrace, TraceOp, TraceSource};
///
/// let op = TraceOp {
///     seq: 0,
///     pc: 0x1000,
///     op: Opcode::Addq,
///     dest: Some(ArchReg::int(3)),
///     srcs: [Some(ArchReg::int(1)), Some(ArchReg::int(2))],
///     mem_addr: None,
///     branch: None,
///     sched_inserted: false,
/// };
/// let trace = PackedTrace::from_ops(&[op]);
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.get(0), op);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedTrace {
    ops: Vec<PackedOp>,
}

impl PackedTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> PackedTrace {
        PackedTrace::default()
    }

    /// An empty trace with room for `capacity` records.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> PackedTrace {
        PackedTrace { ops: Vec::with_capacity(capacity) }
    }

    /// Packs a whole slice (sequence numbers must equal indices, as VM
    /// traces guarantee).
    #[must_use]
    pub fn from_ops(ops: &[TraceOp]) -> PackedTrace {
        let mut trace = PackedTrace::with_capacity(ops.len());
        for op in ops {
            trace.push(op);
        }
        trace
    }

    /// Appends one op (its `seq` becomes implicit and must equal
    /// [`PackedTrace::len`] at the time of the push).
    ///
    /// # Panics
    ///
    /// Panics if the op violates the [module invariant](self).
    pub fn push(&mut self, op: &TraceOp) {
        debug_assert_eq!(op.seq, self.ops.len() as u64, "trace seq must equal its index");
        self.ops.push(PackedOp::pack(op));
    }

    /// The number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op at `index`, unpacked (with `seq == index`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> TraceOp {
        self.ops[index].unpack(index as u64)
    }

    /// Iterates over the unpacked ops in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = TraceOp> + '_ {
        self.ops.iter().enumerate().map(|(i, op)| op.unpack(i as u64))
    }

    /// Unpacks the whole trace (for tests and tools wanting the fat
    /// form).
    #[must_use]
    pub fn to_ops(&self) -> Vec<TraceOp> {
        self.iter().collect()
    }

    /// Bytes per stored record (24, vs [`TraceOp`]'s ~72).
    #[must_use]
    pub fn bytes_per_op() -> usize {
        std::mem::size_of::<PackedOp>()
    }

    /// Bytes per serialized record: the 21 payload bytes of a
    /// [`PackedOp`] without its alignment padding.
    pub const WIRE_BYTES_PER_OP: usize = 21;

    /// Serializes the trace as fixed-width little-endian records
    /// (`pc:8, aux:8, op:1, dest:1, src0:1, src1:1, flags:1`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.ops.len() * PackedTrace::WIRE_BYTES_PER_OP);
        for op in &self.ops {
            out.extend_from_slice(&op.pc.to_le_bytes());
            out.extend_from_slice(&op.aux.to_le_bytes());
            out.extend_from_slice(&[op.op, op.dest, op.src0, op.src1, op.flags]);
        }
        out
    }

    /// Deserializes a [`PackedTrace::to_bytes`] stream, validating every
    /// record.
    ///
    /// Validation is what lets [`PackedOp::unpack`] assume well-formed
    /// records: an opcode byte that names a real [`Opcode`], register
    /// bytes that are the sentinel or a dense index, flag bits from the
    /// defined set in a possible combination, and a zero auxiliary word
    /// when no flag claims it.
    ///
    /// # Errors
    ///
    /// Returns a [`PackedDecodeError`] naming the first corrupt record
    /// and field.
    pub fn from_bytes(bytes: &[u8]) -> Result<PackedTrace, PackedDecodeError> {
        const W: usize = PackedTrace::WIRE_BYTES_PER_OP;
        if !bytes.len().is_multiple_of(W) {
            return Err(PackedDecodeError::Truncated { len: bytes.len() });
        }
        let mut ops = Vec::with_capacity(bytes.len() / W);
        for (index, rec) in bytes.chunks_exact(W).enumerate() {
            let pc = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let aux = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            let [op, dest, src0, src1, flags] = [rec[16], rec[17], rec[18], rec[19], rec[20]];
            if Opcode::from_code(op).is_none() {
                return Err(PackedDecodeError::BadOpcode { index, code: op });
            }
            check_reg_byte(index, "dest", dest)?;
            check_reg_byte(index, "src0", src0)?;
            check_reg_byte(index, "src1", src1)?;
            let defined = HAS_MEM | HAS_BRANCH | TAKEN | CONDITIONAL | SCHED_INSERTED;
            let impossible = flags & !defined != 0
                || flags & HAS_MEM != 0 && flags & HAS_BRANCH != 0
                || flags & (TAKEN | CONDITIONAL) != 0 && flags & HAS_BRANCH == 0;
            if impossible {
                return Err(PackedDecodeError::BadFlags { index, flags });
            }
            if aux != 0 && flags & (HAS_MEM | HAS_BRANCH) == 0 {
                return Err(PackedDecodeError::BadAux { index });
            }
            ops.push(PackedOp { pc, aux, op, dest, src0, src1, flags });
        }
        Ok(PackedTrace { ops })
    }
}

/// A random-access dynamic instruction stream the simulator can fetch
/// from: a fat [`TraceOp`] slice or a [`PackedTrace`].
pub trait TraceSource {
    /// The number of dynamic instructions.
    fn len(&self) -> usize;

    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The op at `index` (with its sequence number materialized).
    fn get(&self, index: usize) -> TraceOp;
}

impl TraceSource for [TraceOp] {
    fn len(&self) -> usize {
        <[TraceOp]>::len(self)
    }

    #[inline]
    fn get(&self, index: usize) -> TraceOp {
        self[index]
    }
}

impl TraceSource for PackedTrace {
    fn len(&self) -> usize {
        PackedTrace::len(self)
    }

    #[inline]
    fn get(&self, index: usize) -> TraceOp {
        PackedTrace::get(self, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_records_are_24_bytes() {
        assert_eq!(PackedTrace::bytes_per_op(), 24);
    }

    fn branch_op(seq: u64) -> TraceOp {
        TraceOp {
            seq,
            pc: 0x2000,
            op: Opcode::Bne,
            dest: None,
            srcs: [Some(ArchReg::int(5)), None],
            mem_addr: None,
            branch: Some(BranchInfo { taken: true, target_pc: 0x1000, conditional: true }),
            sched_inserted: false,
        }
    }

    #[test]
    fn branch_and_memory_ops_round_trip() {
        let ops = [
            TraceOp {
                seq: 0,
                pc: 0x1000,
                op: Opcode::Ldt,
                dest: Some(ArchReg::fp(7)),
                srcs: [Some(ArchReg::int(30)), None],
                mem_addr: Some(0x9008),
                branch: None,
                sched_inserted: true,
            },
            branch_op(1),
        ];
        let trace = PackedTrace::from_ops(&ops);
        assert_eq!(trace.to_ops(), ops);
    }

    #[test]
    fn sentinel_registers_survive() {
        // r0 and f31-adjacent dense indices must not collide with the
        // sentinel; None must come back as None.
        let op = TraceOp {
            seq: 0,
            pc: 0,
            op: Opcode::Br,
            dest: None,
            srcs: [None, None],
            mem_addr: None,
            branch: Some(BranchInfo { taken: true, target_pc: 0, conditional: false }),
            sched_inserted: false,
        };
        assert_eq!(PackedTrace::from_ops(&[op]).get(0), op);
    }

    #[test]
    #[should_panic(expected = "both a memory address and a branch")]
    fn mem_plus_branch_is_rejected() {
        let mut op = branch_op(0);
        op.mem_addr = Some(0x10);
        let _ = PackedOp::pack(&op);
    }

    #[test]
    fn wire_round_trip_preserves_every_record() {
        let ops = [
            TraceOp {
                seq: 0,
                pc: 0x1000,
                op: Opcode::Ldt,
                dest: Some(ArchReg::fp(7)),
                srcs: [Some(ArchReg::int(30)), None],
                mem_addr: Some(0x9008),
                branch: None,
                sched_inserted: true,
            },
            branch_op(1),
            TraceOp {
                seq: 2,
                pc: 0x1010,
                op: Opcode::Addq,
                dest: Some(ArchReg::int(3)),
                srcs: [Some(ArchReg::int(1)), Some(ArchReg::int(2))],
                mem_addr: None,
                branch: None,
                sched_inserted: false,
            },
        ];
        let trace = PackedTrace::from_ops(&ops);
        let bytes = trace.to_bytes();
        assert_eq!(bytes.len(), ops.len() * PackedTrace::WIRE_BYTES_PER_OP);
        assert_eq!(PackedTrace::from_bytes(&bytes).unwrap(), trace);
        assert_eq!(PackedTrace::from_bytes(&[]).unwrap(), PackedTrace::new());
    }

    #[test]
    fn decode_rejects_each_kind_of_corruption() {
        let trace = PackedTrace::from_ops(&[branch_op(0)]);
        let good = trace.to_bytes();

        let truncated = &good[..good.len() - 1];
        assert_eq!(
            PackedTrace::from_bytes(truncated),
            Err(PackedDecodeError::Truncated { len: 20 })
        );

        let mut bad_op = good.clone();
        bad_op[16] = u8::MAX; // no opcode has code 0xFF
        assert_eq!(
            PackedTrace::from_bytes(&bad_op),
            Err(PackedDecodeError::BadOpcode { index: 0, code: u8::MAX })
        );

        let mut bad_reg = good.clone();
        bad_reg[18] = DENSE_REGS; // first invalid dense index
        assert_eq!(
            PackedTrace::from_bytes(&bad_reg),
            Err(PackedDecodeError::BadRegister { index: 0, field: "src0", value: DENSE_REGS })
        );

        let mut bad_flags = good.clone();
        bad_flags[20] = HAS_MEM | HAS_BRANCH;
        assert_eq!(
            PackedTrace::from_bytes(&bad_flags),
            Err(PackedDecodeError::BadFlags { index: 0, flags: HAS_MEM | HAS_BRANCH })
        );

        let mut orphan_bits = good.clone();
        orphan_bits[20] = TAKEN; // branch-outcome bit without HAS_BRANCH
        assert_eq!(
            PackedTrace::from_bytes(&orphan_bits),
            Err(PackedDecodeError::BadFlags { index: 0, flags: TAKEN })
        );

        let mut bad_aux = good;
        bad_aux[20] = 0; // drop HAS_BRANCH but leave the target word
        assert_eq!(PackedTrace::from_bytes(&bad_aux), Err(PackedDecodeError::BadAux { index: 0 }));
    }

    #[test]
    fn trace_source_views_agree() {
        let ops = vec![branch_op(0), branch_op(1)];
        let packed = PackedTrace::from_ops(&ops);
        assert_eq!(TraceSource::len(&packed), TraceSource::len(ops.as_slice()));
        for i in 0..ops.len() {
            assert_eq!(TraceSource::get(&packed, i), TraceSource::get(ops.as_slice(), i));
        }
    }
}
