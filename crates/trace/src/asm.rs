//! A textual assembly format for intermediate-language programs.
//!
//! Programs can be authored (or dumped) as plain text and parsed back,
//! which makes workloads, regression cases, and documentation examples
//! self-describing. The format:
//!
//! ```text
//! ; a comment
//! program "countdown"
//! global %sp            ; global-register candidate
//! init %sp = 0x9000     ; initial register value
//! init $acc = f1.5      ; floating-point initial value
//! initmem 0x2000 = 42   ; initial memory word
//!
//! entry:
//!     lda %i, #5
//!     lda %sum, #0
//! body:
//!     addq %sum, %sum, %i
//!     subq %i, %i, #1
//!     bne %i, body
//! done:
//!     stq [%sp + 0], %sum
//! ```
//!
//! - `%name` names an integer live range, `$name` a floating-point one;
//! - `#imm` is an immediate (decimal or `0x…`);
//! - loads are `ldq %d, [%base + off]`, stores `stq [%base + off], %v`
//!   (`ldt`/`stt` for floating point; the base may be omitted for
//!   absolute addresses: `[0x2000]`);
//! - every label starts a basic block; direct branches name labels;
//! - `jsr %link, label`, `ret %link`, `jmp %addr`.
//!
//! # Example
//!
//! ```
//! use mcl_trace::asm;
//!
//! let program = asm::parse(r#"
//!     program "answer"
//!     entry:
//!         lda %x, #6
//!         mulq %x, %x, #7
//! "#)?;
//! let mut vm = mcl_trace::Vm::new(&program);
//! vm.run_to_end()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use mcl_isa::{Opcode, RegBank};

use crate::instr::Instr;
use crate::program::{Block, BlockId, Program};
use crate::vreg::{RegName, Vreg};

/// A parse error, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the textual form into a validated program.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors, unknown mnemonics or
/// labels, and for programs that fail [`Program::validate`].
pub fn parse(source: &str) -> Result<Program<Vreg>, ParseError> {
    Parser::new().parse(source)
}

/// Renders a program in the textual form accepted by [`parse`].
///
/// Live-range names are synthesised (`%v0`, `$w3`, …) from the register
/// indices, so `parse(render(p))` reproduces `p` up to those names.
#[must_use]
pub fn render(program: &Program<Vreg>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "program \"{}\"", program.name);
    for g in &program.global_candidates {
        let _ = writeln!(out, "global {}", reg_name(*g));
    }
    for &(r, v) in &program.reg_init {
        match r.bank() {
            RegBank::Int => {
                let _ = writeln!(out, "init {} = {:#x}", reg_name(r), v);
            }
            RegBank::Fp => {
                let _ = writeln!(out, "init {} = f{}", reg_name(r), f64::from_bits(v));
            }
        }
    }
    for &(addr, v) in &program.mem_init {
        let _ = writeln!(out, "initmem {addr:#x} = {v:#x}");
    }
    for (bi, block) in program.blocks.iter().enumerate() {
        let _ = writeln!(out, "{}:", label_of(bi, &block.label));
        for instr in &block.instrs {
            let _ = writeln!(out, "    {}", render_instr(instr, program));
        }
    }
    out
}

fn label_of(index: usize, label: &str) -> String {
    // Labels must be unique and identifier-like; prefix with the block
    // index to guarantee both.
    let clean: String =
        label.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect();
    format!("b{index}_{clean}")
}

fn reg_name(r: Vreg) -> String {
    match r.bank() {
        RegBank::Int => format!("%v{}", r.index()),
        RegBank::Fp => format!("$w{}", r.index()),
    }
}

fn render_instr(instr: &Instr<Vreg>, program: &Program<Vreg>) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{}", instr.op);
    let target = |t: Option<BlockId>| {
        t.map(|t| label_of(t.index(), &program.blocks[t.index()].label)).unwrap_or_default()
    };
    match instr.op {
        Opcode::Ldq | Opcode::Ldt => {
            let dest = reg_name(instr.dest.expect("loads have destinations"));
            match instr.srcs[0] {
                Some(base) => {
                    let _ = write!(s, " {dest}, [{} + {}]", reg_name(base), instr.imm);
                }
                None => {
                    let _ = write!(s, " {dest}, [{:#x}]", instr.imm);
                }
            }
        }
        Opcode::Stq | Opcode::Stt => {
            let value = reg_name(instr.srcs[1].expect("stores have value operands"));
            match instr.srcs[0] {
                Some(base) => {
                    let _ = write!(s, " [{} + {}], {value}", reg_name(base), instr.imm);
                }
                None => {
                    let _ = write!(s, " [{:#x}], {value}", instr.imm);
                }
            }
        }
        Opcode::Br => {
            let _ = write!(s, " {}", target(instr.target));
        }
        Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
            let cond = instr.srcs[0].map(reg_name).unwrap_or_else(|| "%v0".into());
            let _ = write!(s, " {cond}, {}", target(instr.target));
        }
        Opcode::Jsr => {
            let link = reg_name(instr.dest.expect("jsr writes a link"));
            let _ = write!(s, " {link}, {}", target(instr.target));
        }
        Opcode::Ret | Opcode::Jmp => {
            let addr = instr.srcs[0].map(reg_name).unwrap_or_else(|| "%v0".into());
            let _ = write!(s, " {addr}");
        }
        _ => {
            let mut first = true;
            let mut push = |part: String, s: &mut String| {
                if first {
                    first = false;
                    s.push(' ');
                } else {
                    s.push_str(", ");
                }
                s.push_str(&part);
            };
            if let Some(d) = instr.dest {
                push(reg_name(d), &mut s);
            }
            if let Some(a) = instr.srcs[0] {
                push(reg_name(a), &mut s);
            }
            match instr.srcs[1] {
                Some(b) => push(reg_name(b), &mut s),
                None => {
                    // Operate-with-literal form (or a pure immediate).
                    push(format!("#{}", instr.imm), &mut s);
                }
            }
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    name: String,
    blocks: Vec<(String, Vec<PendingInstr>)>,
    labels: HashMap<String, usize>,
    regs: HashMap<String, Vreg>,
    next_int: u32,
    next_fp: u32,
    globals: Vec<Vreg>,
    reg_init: Vec<(Vreg, u64)>,
    mem_init: Vec<(u64, u64)>,
}

struct PendingInstr {
    line: usize,
    instr: Instr<Vreg>,
    target_label: Option<String>,
}

impl Parser {
    fn new() -> Parser {
        Parser {
            name: "unnamed".to_owned(),
            blocks: Vec::new(),
            labels: HashMap::new(),
            regs: HashMap::new(),
            next_int: 0,
            next_fp: 0,
            globals: Vec::new(),
            reg_init: Vec::new(),
            mem_init: Vec::new(),
        }
    }

    fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line, message: message.into() })
    }

    fn reg(&mut self, token: &str, line: usize) -> Result<Vreg, ParseError> {
        let (bank, name) = match token.chars().next() {
            Some('%') => (RegBank::Int, &token[1..]),
            Some('$') => (RegBank::Fp, &token[1..]),
            _ => return Parser::err(line, format!("expected a register, found `{token}`")),
        };
        if name.is_empty() {
            return Parser::err(line, "empty register name");
        }
        let key = format!("{}{name}", if bank == RegBank::Int { '%' } else { '$' });
        if let Some(&v) = self.regs.get(&key) {
            return Ok(v);
        }
        let v = match bank {
            RegBank::Int => {
                let v = Vreg::new(RegBank::Int, self.next_int);
                self.next_int += 1;
                v
            }
            RegBank::Fp => {
                let v = Vreg::new(RegBank::Fp, self.next_fp);
                self.next_fp += 1;
                v
            }
        };
        self.regs.insert(key, v);
        Ok(v)
    }

    fn imm(token: &str, line: usize) -> Result<i64, ParseError> {
        let t = token.strip_prefix('#').unwrap_or(token);
        let (neg, t) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t),
        };
        let value = if let Some(hex) = t.strip_prefix("0x") {
            i64::from_str_radix(hex, 16)
        } else {
            t.parse::<i64>()
        };
        match value {
            Ok(v) => Ok(if neg { -v } else { v }),
            Err(_) => Parser::err(line, format!("bad immediate `{token}`")),
        }
    }

    fn parse(mut self, source: &str) -> Result<Program<Vreg>, ParseError> {
        for (i, raw) in source.lines().enumerate() {
            let line = i + 1;
            let text = raw.split(';').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            if let Some(rest) = text.strip_prefix("program") {
                self.name = rest.trim().trim_matches('"').to_owned();
            } else if let Some(rest) = text.strip_prefix("global") {
                let r = self.reg(rest.trim(), line)?;
                if !self.globals.contains(&r) {
                    self.globals.push(r);
                }
            } else if let Some(rest) = text.strip_prefix("initmem") {
                let (addr, value) = split_eq(rest, line)?;
                let addr = Parser::imm(&addr, line)? as u64;
                let value = Parser::imm(&value, line)? as u64;
                self.mem_init.push((addr, value));
            } else if let Some(rest) = text.strip_prefix("init") {
                let (reg, value) = split_eq(rest, line)?;
                let r = self.reg(&reg, line)?;
                let bits = if let Some(f) = value.strip_prefix('f') {
                    match f.parse::<f64>() {
                        Ok(x) => x.to_bits(),
                        Err(_) => return Parser::err(line, format!("bad float `{value}`")),
                    }
                } else {
                    Parser::imm(&value, line)? as u64
                };
                self.reg_init.push((r, bits));
            } else if let Some(label) = text.strip_suffix(':') {
                let label = label.trim().to_owned();
                if self.labels.contains_key(&label) {
                    return Parser::err(line, format!("duplicate label `{label}`"));
                }
                self.labels.insert(label.clone(), self.blocks.len());
                self.blocks.push((label, Vec::new()));
            } else {
                if self.blocks.is_empty() {
                    self.labels.insert("entry".to_owned(), 0);
                    self.blocks.push(("entry".to_owned(), Vec::new()));
                }
                let pending = self.parse_instr(text, line)?;
                self.blocks.last_mut().expect("nonempty").1.push(pending);
            }
        }

        // Resolve labels and assemble.
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (label, pendings) in self.blocks {
            let mut instrs = Vec::with_capacity(pendings.len());
            for p in pendings {
                let mut instr = p.instr;
                if let Some(target) = p.target_label {
                    match self.labels.get(&target) {
                        Some(&idx) => instr.target = Some(BlockId::new(idx)),
                        None => {
                            return Parser::err(p.line, format!("unknown label `{target}`"))
                        }
                    }
                }
                instrs.push(instr);
            }
            blocks.push(Block { label, instrs });
        }
        let program = Program {
            name: self.name,
            blocks,
            reg_init: self.reg_init,
            mem_init: self.mem_init,
            global_candidates: self.globals,
        };
        program
            .validate()
            .map_err(|e| ParseError { line: 0, message: format!("invalid program: {e}") })?;
        Ok(program)
    }

    fn parse_instr(&mut self, text: &str, line: usize) -> Result<PendingInstr, ParseError> {
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m.trim(), r.trim()),
            None => (text, ""),
        };
        let op = Opcode::all()
            .iter()
            .copied()
            .find(|o| o.mnemonic() == mnemonic)
            .ok_or_else(|| ParseError {
                line,
                message: format!("unknown mnemonic `{mnemonic}`"),
            })?;
        let operands: Vec<String> = split_operands(rest);
        let mut instr = Instr::new(op);
        let mut target_label = None;

        use Opcode::*;
        match op {
            Ldq | Ldt => {
                if operands.len() != 2 {
                    return Parser::err(line, "loads take `dest, [base + off]`");
                }
                instr.dest = Some(self.reg(&operands[0], line)?);
                let (base, off) = self.parse_addr(&operands[1], line)?;
                instr.srcs[0] = base;
                instr.imm = off;
            }
            Stq | Stt => {
                if operands.len() != 2 {
                    return Parser::err(line, "stores take `[base + off], value`");
                }
                let (base, off) = self.parse_addr(&operands[0], line)?;
                instr.srcs[0] = base;
                instr.imm = off;
                instr.srcs[1] = Some(self.reg(&operands[1], line)?);
            }
            Br => {
                if operands.len() != 1 {
                    return Parser::err(line, "br takes a label");
                }
                target_label = Some(operands[0].clone());
            }
            Beq | Bne | Blt | Bge => {
                if operands.len() != 2 {
                    return Parser::err(line, "conditional branches take `cond, label`");
                }
                instr.srcs[0] = Some(self.reg(&operands[0], line)?);
                target_label = Some(operands[1].clone());
            }
            Jsr => {
                if operands.len() != 2 {
                    return Parser::err(line, "jsr takes `link, label`");
                }
                instr.dest = Some(self.reg(&operands[0], line)?);
                target_label = Some(operands[1].clone());
            }
            Ret | Jmp => {
                if operands.len() != 1 {
                    return Parser::err(line, "ret/jmp take a register");
                }
                instr.srcs[0] = Some(self.reg(&operands[0], line)?);
            }
            _ => {
                // Operate form: dest, then sources/immediates per shape.
                let mut idx = 0;
                if op.dest_bank().is_some() {
                    if operands.is_empty() {
                        return Parser::err(line, format!("`{mnemonic}` needs a destination"));
                    }
                    instr.dest = Some(self.reg(&operands[0], line)?);
                    idx = 1;
                }
                let mut src_slot = 0;
                for operand in &operands[idx..] {
                    if operand.starts_with('#')
                        || operand.starts_with("0x")
                        || operand.starts_with('-')
                        || operand.chars().next().is_some_and(|c| c.is_ascii_digit())
                    {
                        instr.imm = Parser::imm(operand, line)?;
                    } else {
                        if src_slot >= 2 {
                            return Parser::err(line, "too many register sources");
                        }
                        instr.srcs[src_slot] = Some(self.reg(operand, line)?);
                        src_slot += 1;
                    }
                }
            }
        }
        Ok(PendingInstr { line, instr, target_label })
    }

    /// Parses `[%base + off]`, `[%base]`, or `[addr]`.
    fn parse_addr(
        &mut self,
        token: &str,
        line: usize,
    ) -> Result<(Option<Vreg>, i64), ParseError> {
        let inner = token
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| ParseError {
                line,
                message: format!("expected `[...]` address, found `{token}`"),
            })?
            .trim();
        if let Some((base, off)) = inner.split_once('+') {
            let r = self.reg(base.trim(), line)?;
            Ok((Some(r), Parser::imm(off.trim(), line)?))
        } else if let Some((base, off)) = inner.split_once('-') {
            if base.trim().starts_with('%') || base.trim().starts_with('$') {
                let r = self.reg(base.trim(), line)?;
                Ok((Some(r), -Parser::imm(off.trim(), line)?))
            } else {
                Ok((None, Parser::imm(inner, line)?))
            }
        } else if inner.starts_with('%') || inner.starts_with('$') {
            Ok((Some(self.reg(inner, line)?), 0))
        } else {
            Ok((None, Parser::imm(inner, line)?))
        }
    }
}

fn split_eq(rest: &str, line: usize) -> Result<(String, String), ParseError> {
    match rest.split_once('=') {
        Some((a, b)) => Ok((a.trim().to_owned(), b.trim().to_owned())),
        None => Parser::err(line, "expected `lhs = rhs`"),
    }
}

/// Splits operands on commas, keeping `[...]` groups intact.
fn split_operands(rest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for c in rest.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_owned());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Vm;

    #[test]
    fn parses_and_runs_a_loop() {
        let p = parse(
            r#"
            program "countdown"
            global %sp
            init %sp = 0x9000
            entry:
                lda %i, #5
                lda %sum, #0
            body:
                addq %sum, %sum, %i
                subq %i, %i, #1
                bne %i, body
            done:
                stq [%sp + 0], %sum
            "#,
        )
        .expect("parses");
        assert_eq!(p.name, "countdown");
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.global_candidates.len(), 1);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.memory().read(0x9000), 15);
    }

    #[test]
    fn parses_floating_point_and_absolute_memory() {
        let p = parse(
            r#"
            init $acc = f2.5
            entry:
                ldt $x, [0x2000]
                addt $acc, $acc, $x
                stt [0x2008], $acc
            "#,
        )
        .unwrap();
        let mut with_mem = p.clone();
        with_mem.mem_init.push((0x2000, 1.5f64.to_bits()));
        let mut vm = Vm::new(&with_mem);
        vm.run_to_end().unwrap();
        assert_eq!(f64::from_bits(vm.memory().read(0x2008)), 4.0);
    }

    #[test]
    fn reports_unknown_mnemonics_with_line_numbers() {
        let err = parse("entry:\n    frobnicate %x, %y\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn reports_unknown_labels() {
        let err = parse("entry:\n    br nowhere\n").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let err = parse("a:\n    lda %x, #1\na:\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn negative_offsets_and_immediates() {
        let p = parse(
            r#"
            entry:
                lda %base, #0x3000
                lda %v, #-7
                stq [%base - 8], %v
            "#,
        )
        .unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.memory().read(0x3000 - 8) as i64, -7);
    }

    #[test]
    fn roundtrip_through_render() {
        let original = parse(
            r#"
            program "round"
            global %gp
            init %gp = 0x8000
            initmem 0x8000 = 99
            entry:
                ldq %v, [%gp + 0]
                mulq %v, %v, #3
            loop:
                subq %v, %v, #1
                bne %v, loop
            tail:
                stq [%gp + 8], %v
                cvtqt $f, %v
                addt $f, $f, $f
                stt [%gp + 16], $f
            "#,
        )
        .unwrap();
        let text = render(&original);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        // Same structure and identical semantics.
        assert_eq!(original.blocks.len(), reparsed.blocks.len());
        assert_eq!(original.static_len(), reparsed.static_len());
        let mut vm1 = Vm::new(&original);
        vm1.run_to_end().unwrap();
        let mut vm2 = Vm::new(&reparsed);
        vm2.run_to_end().unwrap();
        assert_eq!(vm1.memory().read(0x8008), vm2.memory().read(0x8008));
        assert_eq!(vm1.memory().read(0x8010), vm2.memory().read(0x8010));
    }

    #[test]
    fn implicit_entry_block() {
        let p = parse("    lda %x, #1\n").unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0].label, "entry");
    }

    #[test]
    fn calls_and_returns_parse() {
        let p = parse(
            r#"
            entry:
                lda %halt, #0
                jsr %link, callee
            after:
                ret %halt
            callee:
                lda %x, #42
                ret %link
            "#,
        )
        .unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert!(vm.is_halted());
    }
}
