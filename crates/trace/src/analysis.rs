//! Trace analysis: behavioural profiles of programs.
//!
//! The reproduction substitutes synthetic workloads for SPEC92 binaries
//! (see the repository's DESIGN.md); this module measures the properties
//! that substitution argument rests on — instruction-class mix, basic
//! block shape, branch behaviour, and memory footprint — directly from
//! the dynamic instruction stream.

use std::collections::HashSet;

use mcl_isa::InstrClass;

use crate::vreg::RegName;
use crate::{Program, Step, Vm, VmError};

/// A dynamic behavioural profile of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MixReport {
    /// Program name.
    pub name: String,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic count per instruction class, in [`InstrClass::ALL`] order.
    pub class_counts: [u64; 7],
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Conditional branches taken.
    pub taken: u64,
    /// Dynamic basic blocks entered.
    pub blocks_entered: u64,
    /// Distinct 64-bit memory words touched (data footprint).
    pub data_words: usize,
    /// Distinct instruction addresses executed (code footprint).
    pub code_words: usize,
}

impl MixReport {
    /// Fraction of dynamic instructions in `class`.
    #[must_use]
    pub fn class_fraction(&self, class: InstrClass) -> f64 {
        let idx = InstrClass::ALL.iter().position(|&c| c == class).expect("known class");
        if self.instructions == 0 {
            0.0
        } else {
            self.class_counts[idx] as f64 / self.instructions as f64
        }
    }

    /// Mean dynamic basic-block length in instructions.
    #[must_use]
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks_entered == 0 {
            0.0
        } else {
            self.instructions as f64 / self.blocks_entered as f64
        }
    }

    /// Conditional-branch taken rate.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.taken as f64 / self.cond_branches as f64
        }
    }

    /// Data footprint in bytes.
    #[must_use]
    pub fn data_bytes(&self) -> usize {
        self.data_words * 8
    }

    /// One line of a mix table.
    #[must_use]
    pub fn render_row(&self) -> String {
        format!(
            "{:<10} {:>9} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1} {:>6.1}% {:>8}",
            self.name,
            self.instructions,
            self.class_fraction(InstrClass::IntAlu) * 100.0
                + self.class_fraction(InstrClass::IntMul) * 100.0,
            self.class_fraction(InstrClass::FpOther) * 100.0,
            self.class_fraction(InstrClass::FpDiv) * 100.0,
            self.class_fraction(InstrClass::Load) * 100.0,
            self.class_fraction(InstrClass::Store) * 100.0,
            self.mean_block_len(),
            self.taken_rate() * 100.0,
            self.data_bytes(),
        )
    }

    /// The header matching [`MixReport::render_row`].
    #[must_use]
    pub fn render_header() -> String {
        format!(
            "{:<10} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
            "program", "dyn", "int", "fp", "fpdiv", "load", "store", "blk", "taken", "data(B)"
        )
    }
}

/// Executes `program` and measures its behavioural profile.
///
/// # Errors
///
/// Propagates VM execution failures.
pub fn analyze<R: RegName>(program: &Program<R>) -> Result<MixReport, VmError> {
    let mut vm = Vm::new(program);
    let mut report = MixReport {
        name: program.name.clone(),
        instructions: 0,
        class_counts: [0; 7],
        cond_branches: 0,
        taken: 0,
        blocks_entered: 0,
        data_words: 0,
        code_words: 0,
    };
    let mut data: HashSet<u64> = HashSet::new();
    let mut code: HashSet<u64> = HashSet::new();
    for step in vm.by_ref() {
        let step: Step<R> = step?;
        report.instructions += 1;
        let idx = InstrClass::ALL
            .iter()
            .position(|&c| c == step.op.class())
            .expect("known class");
        report.class_counts[idx] += 1;
        if step.index == 0 {
            report.blocks_entered += 1;
        }
        if let Some(br) = step.branch {
            if br.conditional {
                report.cond_branches += 1;
                if br.taken {
                    report.taken += 1;
                }
            }
        }
        if let Some(addr) = step.mem_addr {
            data.insert(addr & !7);
        }
        code.insert(step.pc);
    }
    report.data_words = data.len();
    report.code_words = code.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn mix_counts_classes_and_blocks() {
        let mut b = ProgramBuilder::new("mix");
        let i = b.vreg_int("i");
        let f = b.vreg_fp("f");
        let base = b.vreg_int("base");
        let body = b.new_block("body");
        b.lda(base, 0x4000);
        b.lda(i, 4);
        b.switch_to(body);
        b.cvtqt(f, i);
        b.mult(f, f, f);
        b.stt(base, 0, f);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let r = analyze(&p).unwrap();
        // entry 2 + 4 iterations x 5 instructions.
        assert_eq!(r.instructions, 22);
        assert_eq!(r.cond_branches, 4);
        assert_eq!(r.taken, 3);
        assert_eq!(r.blocks_entered, 5);
        assert_eq!(r.data_words, 1);
        assert!(r.class_fraction(InstrClass::FpOther) > 0.3);
        assert!((r.taken_rate() - 0.75).abs() < 1e-12);
        assert!((r.mean_block_len() - 22.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn footprints_track_distinct_words() {
        let mut b = ProgramBuilder::new("fp");
        let base = b.vreg_int("base");
        let v = b.vreg_int("v");
        b.lda(base, 0x4000);
        b.lda(v, 1);
        b.stq(base, 0, v);
        b.stq(base, 0, v); // same word
        b.stq(base, 8, v); // new word
        let p = b.finish().unwrap();
        let r = analyze(&p).unwrap();
        assert_eq!(r.data_words, 2);
        assert_eq!(r.data_bytes(), 16);
        assert_eq!(r.code_words, 5);
    }

    #[test]
    fn header_and_row_align() {
        let mut b = ProgramBuilder::new("hdr");
        let v = b.vreg_int("v");
        b.lda(v, 1);
        let p = b.finish().unwrap();
        let r = analyze(&p).unwrap();
        assert!(!MixReport::render_header().is_empty());
        assert!(r.render_row().starts_with("hdr"));
    }
}
