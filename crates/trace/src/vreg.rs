//! Virtual registers (live ranges) and the [`RegName`] abstraction.

use std::fmt;
use std::hash::Hash;

use mcl_isa::{ArchReg, RegBank};

/// A register name space usable in a [`crate::Program`].
///
/// Two implementations exist:
///
/// - [`Vreg`] — live ranges, the intermediate-language name space the
///   paper's schedulers operate on ("the IL instructions name live ranges
///   and not registers", Section 3.1 step 2);
/// - [`mcl_isa::ArchReg`] — architectural registers, the machine-level
///   name space the simulator consumes.
///
/// This trait is sealed in spirit: downstream implementations are
/// unsupported and may break with any release.
pub trait RegName: Copy + Eq + Ord + Hash + fmt::Debug + fmt::Display {
    /// The register bank this name belongs to.
    fn bank(self) -> RegBank;

    /// Whether this name is a hardwired zero (reads as zero, writes are
    /// discarded). No virtual register is a zero.
    fn is_zero(self) -> bool;

    /// A dense index for table-based storage. Must be injective; need not
    /// be bounded for virtual registers.
    fn storage_index(self) -> usize;
}

impl RegName for ArchReg {
    fn bank(self) -> RegBank {
        ArchReg::bank(self)
    }

    fn is_zero(self) -> bool {
        ArchReg::is_zero(self)
    }

    fn storage_index(self) -> usize {
        self.dense_index()
    }
}

/// A virtual register naming one *live range* of the intermediate
/// language.
///
/// The paper's compilation methodology works on live ranges: "the
/// allocation of values to registers must be carried out after the
/// instructions are ordered into a code schedule" and live ranges are the
/// unit the partitioner assigns to clusters. In this reproduction each
/// `Vreg` *is* one live range — the workload programs are authored
/// directly in live-range form.
///
/// # Example
///
/// ```
/// use mcl_trace::Vreg;
/// use mcl_isa::RegBank;
///
/// let v = Vreg::int(7);
/// assert_eq!(v.to_string(), "v7");
/// assert_eq!(Vreg::fp(7).to_string(), "w7");
/// assert_ne!(Vreg::int(7), Vreg::fp(7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vreg {
    bank: RegBank,
    index: u32,
}

impl Vreg {
    /// Creates an integer virtual register.
    #[must_use]
    pub fn int(index: u32) -> Vreg {
        Vreg { bank: RegBank::Int, index }
    }

    /// Creates a floating-point virtual register.
    #[must_use]
    pub fn fp(index: u32) -> Vreg {
        Vreg { bank: RegBank::Fp, index }
    }

    /// Creates a virtual register in the given bank.
    #[must_use]
    pub fn new(bank: RegBank, index: u32) -> Vreg {
        Vreg { bank, index }
    }

    /// The index within the bank.
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }
}

impl RegName for Vreg {
    fn bank(self) -> RegBank {
        self.bank
    }

    fn is_zero(self) -> bool {
        false
    }

    fn storage_index(self) -> usize {
        // Interleave banks so both grow without colliding.
        (self.index as usize) * 2
            + match self.bank {
                RegBank::Int => 0,
                RegBank::Fp => 1,
            }
    }
}

impl fmt::Display for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.bank {
            RegBank::Int => 'v',
            RegBank::Fp => 'w',
        };
        write!(f, "{prefix}{}", self.index)
    }
}

impl fmt::Debug for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vreg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_index_is_injective_across_banks() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(seen.insert(Vreg::int(i).storage_index()));
            assert!(seen.insert(Vreg::fp(i).storage_index()));
        }
    }

    #[test]
    fn archreg_storage_matches_dense_index() {
        for reg in ArchReg::all() {
            assert_eq!(RegName::storage_index(reg), reg.dense_index());
        }
    }

    #[test]
    fn vregs_are_never_zero() {
        assert!(!Vreg::int(31).is_zero());
        assert!(RegName::is_zero(ArchReg::ZERO));
    }
}
