//! Ergonomic program construction.

use mcl_isa::{Opcode, RegBank};

use crate::instr::Instr;
use crate::program::{Block, BlockId, Program, ValidateError};
use crate::vreg::{RegName, Vreg};

/// Builds a [`Program`] incrementally.
///
/// The builder starts with a single `entry` block selected; instruction
/// helpers append to the selected block. Create further blocks with
/// [`ProgramBuilder::new_block`] and select them with
/// [`ProgramBuilder::switch_to`]. For IL programs
/// (`ProgramBuilder<Vreg>`), [`ProgramBuilder::vreg_int`] and
/// [`ProgramBuilder::vreg_fp`] mint fresh live ranges.
///
/// # Example
///
/// ```
/// use mcl_trace::{ProgramBuilder, Vm};
///
/// // Count down from 5, accumulating a sum.
/// let mut b = ProgramBuilder::new("countdown");
/// let i = b.vreg_int("i");
/// let sum = b.vreg_int("sum");
/// let body = b.new_block("body");
/// let done = b.new_block("done");
///
/// b.lda(i, 5);
/// b.lda(sum, 0);
///
/// b.switch_to(body);
/// b.addq(sum, sum, i);
/// b.subq_imm(i, i, 1);
/// b.bne(i, body);
///
/// b.switch_to(done);
/// let program = b.finish()?;
///
/// let mut vm = Vm::new(&program);
/// vm.run_to_end()?;
/// assert_eq!(vm.reg(sum), 15);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder<R = Vreg> {
    program: Program<R>,
    current: BlockId,
    next_int: u32,
    next_fp: u32,
}

impl<R: RegName> ProgramBuilder<R> {
    /// Creates a builder with a single empty `entry` block selected.
    #[must_use]
    pub fn new(name: &str) -> ProgramBuilder<R> {
        ProgramBuilder {
            program: Program {
                name: name.to_owned(),
                blocks: vec![Block { label: "entry".to_owned(), instrs: Vec::new() }],
                reg_init: Vec::new(),
                mem_init: Vec::new(),
                global_candidates: Vec::new(),
            },
            current: BlockId::new(0),
            next_int: 0,
            next_fp: 0,
        }
    }

    /// Appends a new, empty block and returns its id (the selection is
    /// unchanged).
    pub fn new_block(&mut self, label: &str) -> BlockId {
        let id = BlockId::new(self.program.blocks.len());
        self.program.blocks.push(Block { label: label.to_owned(), instrs: Vec::new() });
        id
    }

    /// Selects the block subsequent helpers append to.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.index() < self.program.blocks.len(), "no such block {block}");
        self.current = block;
    }

    /// The currently selected block.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Appends a raw instruction to the selected block.
    pub fn push(&mut self, instr: Instr<R>) {
        self.program.blocks[self.current.index()].instrs.push(instr);
    }

    /// Records an initial register value.
    pub fn reg_init(&mut self, reg: R, value: u64) {
        self.program.reg_init.push((reg, value));
    }

    /// Records an initial floating-point register value.
    pub fn reg_init_f64(&mut self, reg: R, value: f64) {
        self.program.reg_init.push((reg, value.to_bits()));
    }

    /// Records an initial memory word at `addr` (must be 8-byte aligned).
    pub fn mem_init(&mut self, addr: u64, value: u64) {
        self.program.mem_init.push((addr, value));
    }

    /// Records an initial floating-point memory word.
    pub fn mem_init_f64(&mut self, addr: u64, value: f64) {
        self.program.mem_init.push((addr, value.to_bits()));
    }

    /// Designates `reg` as a global-register candidate (the role the
    /// paper gives the stack- and global-pointer live ranges).
    pub fn designate_global_candidate(&mut self, reg: R) {
        if !self.program.global_candidates.contains(&reg) {
            self.program.global_candidates.push(reg);
        }
    }

    /// Validates and returns the program.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation; see [`ValidateError`].
    pub fn finish(self) -> Result<Program<R>, ValidateError> {
        self.program.validate()?;
        Ok(self.program)
    }

    // ---- three-register operate forms ------------------------------------

    fn op3(&mut self, op: Opcode, dest: R, a: R, b: R) {
        self.push(Instr { op, dest: Some(dest), srcs: [Some(a), Some(b)], imm: 0, target: None, sched_inserted: false });
    }

    fn op2_imm(&mut self, op: Opcode, dest: R, a: R, imm: i64) {
        self.push(Instr { op, dest: Some(dest), srcs: [Some(a), None], imm, target: None, sched_inserted: false });
    }

    /// `dest = a + b`.
    pub fn addq(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Addq, dest, a, b);
    }

    /// `dest = a + imm`.
    pub fn addq_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Addq, dest, a, imm);
    }

    /// `dest = a - b`.
    pub fn subq(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Subq, dest, a, b);
    }

    /// `dest = a - imm`.
    pub fn subq_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Subq, dest, a, imm);
    }

    /// `dest = a * b` (integer multiply, 6-cycle unit).
    pub fn mulq(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Mulq, dest, a, b);
    }

    /// `dest = a * imm`.
    pub fn mulq_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Mulq, dest, a, imm);
    }

    /// `dest = a & b`.
    pub fn and(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::And, dest, a, b);
    }

    /// `dest = a & imm`.
    pub fn and_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::And, dest, a, imm);
    }

    /// `dest = a | b`.
    pub fn or(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Or, dest, a, b);
    }

    /// `dest = a ^ b`.
    pub fn xor(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Xor, dest, a, b);
    }

    /// `dest = a ^ imm`.
    pub fn xor_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Xor, dest, a, imm);
    }

    /// `dest = a << imm`.
    pub fn sll_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Sll, dest, a, imm);
    }

    /// `dest = a >> imm` (logical).
    pub fn srl_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Srl, dest, a, imm);
    }

    /// `dest = a >> imm` (arithmetic).
    pub fn sra_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Sra, dest, a, imm);
    }

    /// `dest = (a == b) as u64`.
    pub fn cmpeq(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Cmpeq, dest, a, b);
    }

    /// `dest = (a == imm) as u64`.
    pub fn cmpeq_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Cmpeq, dest, a, imm);
    }

    /// `dest = (a < b) as u64` (signed).
    pub fn cmplt(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Cmplt, dest, a, b);
    }

    /// `dest = (a < imm) as u64` (signed).
    pub fn cmplt_imm(&mut self, dest: R, a: R, imm: i64) {
        self.op2_imm(Opcode::Cmplt, dest, a, imm);
    }

    /// `dest = (a <= b) as u64` (signed).
    pub fn cmple(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Cmple, dest, a, b);
    }

    /// `dest = (a < b) as u64` (unsigned).
    pub fn cmpult(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Cmpult, dest, a, b);
    }

    /// `dest = imm` (load immediate).
    pub fn lda(&mut self, dest: R, imm: i64) {
        self.push(Instr { op: Opcode::Lda, dest: Some(dest), srcs: [None, None], imm, target: None, sched_inserted: false });
    }

    /// `dest = base + imm` (load address).
    pub fn lda_reg(&mut self, dest: R, base: R, imm: i64) {
        self.op2_imm(Opcode::Lda, dest, base, imm);
    }

    /// `dest = src` (integer move).
    pub fn mov(&mut self, dest: R, src: R) {
        self.op2_imm(Opcode::Addq, dest, src, 0);
    }

    // ---- floating point ---------------------------------------------------

    /// `dest = a + b` (floating point).
    pub fn addt(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Addt, dest, a, b);
    }

    /// `dest = a - b` (floating point).
    pub fn subt(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Subt, dest, a, b);
    }

    /// `dest = a * b` (floating point).
    pub fn mult(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Mult, dest, a, b);
    }

    /// `dest = a / b` (single precision: 8-cycle unpipelined divider).
    pub fn divs(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Divs, dest, a, b);
    }

    /// `dest = a / b` (double precision: 16-cycle unpipelined divider).
    pub fn divt(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Divt, dest, a, b);
    }

    /// `dest = sqrt(a)` (single precision, occupies the divider).
    pub fn sqrts(&mut self, dest: R, a: R) {
        self.push(Instr { op: Opcode::Sqrts, dest: Some(dest), srcs: [Some(a), None], imm: 0, target: None, sched_inserted: false });
    }

    /// `dest = sqrt(a)` (double precision, occupies the divider).
    pub fn sqrtt(&mut self, dest: R, a: R) {
        self.push(Instr { op: Opcode::Sqrtt, dest: Some(dest), srcs: [Some(a), None], imm: 0, target: None, sched_inserted: false });
    }

    /// `dest(int) = (a == b) as u64` (floating-point compare).
    pub fn cmpteq(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Cmpteq, dest, a, b);
    }

    /// `dest(int) = (a < b) as u64` (floating-point compare).
    pub fn cmptlt(&mut self, dest: R, a: R, b: R) {
        self.op3(Opcode::Cmptlt, dest, a, b);
    }

    /// `dest(fp) = a as f64` (integer-to-float convert).
    pub fn cvtqt(&mut self, dest: R, a: R) {
        self.push(Instr { op: Opcode::Cvtqt, dest: Some(dest), srcs: [Some(a), None], imm: 0, target: None, sched_inserted: false });
    }

    /// `dest(int) = trunc(a)` (float-to-integer convert).
    pub fn cvttq(&mut self, dest: R, a: R) {
        self.push(Instr { op: Opcode::Cvttq, dest: Some(dest), srcs: [Some(a), None], imm: 0, target: None, sched_inserted: false });
    }

    /// `dest = src` (floating-point move).
    pub fn fmov(&mut self, dest: R, src: R) {
        self.push(Instr { op: Opcode::Fmov, dest: Some(dest), srcs: [Some(src), None], imm: 0, target: None, sched_inserted: false });
    }

    // ---- memory -------------------------------------------------------------

    /// `dest = mem[base + offset]` (integer load).
    pub fn ldq(&mut self, dest: R, base: R, offset: i64) {
        self.push(Instr {
            op: Opcode::Ldq,
            dest: Some(dest),
            srcs: [Some(base), None],
            imm: offset,
            target: None,
            sched_inserted: false,
        });
    }

    /// `dest = mem[imm]` (integer load, absolute address).
    pub fn ldq_abs(&mut self, dest: R, addr: i64) {
        self.push(Instr { op: Opcode::Ldq, dest: Some(dest), srcs: [None, None], imm: addr, target: None, sched_inserted: false });
    }

    /// `mem[base + offset] = value` (integer store).
    pub fn stq(&mut self, base: R, offset: i64, value: R) {
        self.push(Instr {
            op: Opcode::Stq,
            dest: None,
            srcs: [Some(base), Some(value)],
            imm: offset,
            target: None,
            sched_inserted: false,
        });
    }

    /// `dest(fp) = mem[base + offset]` (floating-point load).
    pub fn ldt(&mut self, dest: R, base: R, offset: i64) {
        self.push(Instr {
            op: Opcode::Ldt,
            dest: Some(dest),
            srcs: [Some(base), None],
            imm: offset,
            target: None,
            sched_inserted: false,
        });
    }

    /// `mem[base + offset] = value(fp)` (floating-point store).
    pub fn stt(&mut self, base: R, offset: i64, value: R) {
        self.push(Instr {
            op: Opcode::Stt,
            dest: None,
            srcs: [Some(base), Some(value)],
            imm: offset,
            target: None,
            sched_inserted: false,
        });
    }

    // ---- control flow ---------------------------------------------------

    /// Unconditional branch to `target`.
    pub fn br(&mut self, target: BlockId) {
        self.push(Instr { op: Opcode::Br, dest: None, srcs: [None, None], imm: 0, target: Some(target), sched_inserted: false });
    }

    /// Branch to `target` if `cond == 0`.
    pub fn beq(&mut self, cond: R, target: BlockId) {
        self.push(Instr { op: Opcode::Beq, dest: None, srcs: [Some(cond), None], imm: 0, target: Some(target), sched_inserted: false });
    }

    /// Branch to `target` if `cond != 0`.
    pub fn bne(&mut self, cond: R, target: BlockId) {
        self.push(Instr { op: Opcode::Bne, dest: None, srcs: [Some(cond), None], imm: 0, target: Some(target), sched_inserted: false });
    }

    /// Branch to `target` if `cond < 0` (signed).
    pub fn blt(&mut self, cond: R, target: BlockId) {
        self.push(Instr { op: Opcode::Blt, dest: None, srcs: [Some(cond), None], imm: 0, target: Some(target), sched_inserted: false });
    }

    /// Branch to `target` if `cond >= 0` (signed).
    pub fn bge(&mut self, cond: R, target: BlockId) {
        self.push(Instr { op: Opcode::Bge, dest: None, srcs: [Some(cond), None], imm: 0, target: Some(target), sched_inserted: false });
    }

    /// Call `target`, writing the return address to `link`.
    pub fn jsr(&mut self, link: R, target: BlockId) {
        self.push(Instr { op: Opcode::Jsr, dest: Some(link), srcs: [None, None], imm: 0, target: Some(target), sched_inserted: false });
    }

    /// Return through `link` (jump to the address it holds; address 0
    /// halts the program).
    pub fn ret(&mut self, link: R) {
        self.push(Instr { op: Opcode::Ret, dest: None, srcs: [Some(link), None], imm: 0, target: None, sched_inserted: false });
    }

    /// Indirect jump through `addr` (address 0 halts the program).
    pub fn jmp(&mut self, addr: R) {
        self.push(Instr { op: Opcode::Jmp, dest: None, srcs: [Some(addr), None], imm: 0, target: None, sched_inserted: false });
    }
}

impl ProgramBuilder<Vreg> {
    /// Mints a fresh integer live range. The name is currently used only
    /// for documentation at call sites.
    pub fn vreg_int(&mut self, _name: &str) -> Vreg {
        let v = Vreg::new(RegBank::Int, self.next_int);
        self.next_int += 1;
        v
    }

    /// Mints a fresh floating-point live range.
    pub fn vreg_fp(&mut self, _name: &str) -> Vreg {
        let v = Vreg::new(RegBank::Fp, self.next_fp);
        self.next_fp += 1;
        v
    }

    /// The number of integer live ranges minted so far.
    #[must_use]
    pub fn int_vregs(&self) -> u32 {
        self.next_int
    }

    /// The number of floating-point live ranges minted so far.
    #[must_use]
    pub fn fp_vregs(&self) -> u32 {
        self.next_fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_programs() {
        let mut b = ProgramBuilder::new("t");
        let x = b.vreg_int("x");
        let y = b.vreg_fp("y");
        let exit = b.new_block("exit");
        b.lda(x, 42);
        b.cvtqt(y, x);
        b.sqrtt(y, y);
        b.br(exit);
        b.switch_to(exit);
        let p = b.finish().expect("valid");
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.static_len(), 4);
    }

    #[test]
    fn fresh_vregs_do_not_collide() {
        let mut b = ProgramBuilder::new("t");
        let a = b.vreg_int("a");
        let c = b.vreg_int("c");
        let f = b.vreg_fp("f");
        assert_ne!(a, c);
        assert_ne!(a.storage_index(), f.storage_index());
        use crate::vreg::RegName;
        assert_eq!(b.int_vregs(), 2);
        assert_eq!(b.fp_vregs(), 1);
    }

    #[test]
    #[should_panic(expected = "no such block")]
    fn switching_to_missing_block_panics() {
        let mut b = ProgramBuilder::<Vreg>::new("t");
        b.switch_to(BlockId::new(3));
    }

    #[test]
    fn invalid_instruction_fails_finish() {
        let mut b = ProgramBuilder::new("t");
        let f = b.vreg_fp("f");
        // lda writes an integer, so an fp destination must be rejected.
        b.lda(f, 1);
        assert!(b.finish().is_err());
    }
}
