//! The trace-generating virtual machine.
//!
//! [`Vm`] executes a [`Program`] functionally — real register values,
//! real memory, real branch outcomes — and yields one [`Step`] per
//! dynamic instruction. This plays the role ATOM instrumentation played
//! in the paper: it produces the dynamic instruction stream (with
//! effective addresses and branch outcomes) that drives the cycle-level
//! simulator, the per-block execution [`Profile`] the local scheduler
//! consumes, and the final architectural state used as a golden model in
//! tests.

use std::collections::HashMap;
use std::fmt;

use mcl_isa::{ArchReg, Opcode};

use crate::instr::Instr;
use crate::profile::Profile;
use crate::program::{BlockId, Layout, Program};
use crate::traceop::{BranchInfo, TraceOp};
use crate::vreg::RegName;

/// Default cap on executed instructions, guarding against authoring bugs
/// that produce unintended infinite loops.
pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;

/// Sparse 64-bit-word memory.
///
/// Addresses are truncated to 8-byte alignment (the synthetic workloads
/// only use aligned accesses; sub-word addressing is out of scope).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    words: HashMap<u64, u64>,
}

impl Memory {
    /// An empty memory (all words read as zero).
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads the word containing `addr`.
    #[must_use]
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&(addr & !7)).copied().unwrap_or(0)
    }

    /// Writes the word containing `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        self.words.insert(addr & !7, value);
    }

    /// The number of distinct words written.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.words.len()
    }
}

/// An execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The step cap was exceeded (see [`Vm::with_max_steps`]).
    MaxStepsExceeded {
        /// The cap that was hit.
        limit: u64,
    },
    /// An indirect jump targeted an address outside the code segment.
    BadJump {
        /// The dynamic target address.
        pc: u64,
        /// The sequence number of the jumping instruction.
        seq: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MaxStepsExceeded { limit } => {
                write!(f, "execution exceeded {limit} instructions")
            }
            VmError::BadJump { pc, seq } => {
                write!(f, "instruction #{seq} jumped to invalid address {pc:#x}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// One executed dynamic instruction, in the program's register name
/// space.
///
/// For machine programs (`R = ArchReg`) a `Step` converts losslessly
/// [`into`](From) a [`TraceOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step<R> {
    /// Position in the dynamic stream (0-based).
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The static location executed.
    pub block: BlockId,
    /// Index within the block.
    pub index: usize,
    /// The operation.
    pub op: Opcode,
    /// Destination register (zero registers reported as `None`).
    pub dest: Option<R>,
    /// Source registers (zero registers reported as `None`).
    pub srcs: [Option<R>; 2],
    /// Effective address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Control-flow outcome, for control-flow instructions.
    pub branch: Option<BranchInfo>,
    /// Whether the executed instruction was inserted by the scheduler
    /// (see [`crate::Instr::sched_inserted`]).
    pub sched_inserted: bool,
}

impl From<Step<ArchReg>> for TraceOp {
    fn from(step: Step<ArchReg>) -> TraceOp {
        TraceOp {
            seq: step.seq,
            pc: step.pc,
            op: step.op,
            dest: step.dest,
            srcs: step.srcs,
            mem_addr: step.mem_addr,
            branch: step.branch,
            sched_inserted: step.sched_inserted,
        }
    }
}

/// The virtual machine.
///
/// `Vm` is an [`Iterator`] over `Result<Step<R>, VmError>`; it can also
/// be driven to completion with [`Vm::run_to_end`]. After execution the
/// final register values ([`Vm::reg`]), memory ([`Vm::memory`]), and
/// block profile ([`Vm::profile`]) are available for inspection.
///
/// # Example
///
/// ```
/// use mcl_trace::{ProgramBuilder, Vm, Vreg};
///
/// let mut b = ProgramBuilder::new("square");
/// let x = b.vreg_int("x");
/// b.lda(x, 9);
/// b.mulq(x, x, x);
/// let program = b.finish()?;
///
/// let mut vm = Vm::new(&program);
/// let steps = vm.run_to_end()?;
/// assert_eq!(steps, 2);
/// assert_eq!(vm.reg(x), 81);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Vm<'p, R> {
    program: &'p Program<R>,
    layout: Layout,
    regs: Vec<u64>,
    mem: Memory,
    /// Current location; `None` once halted.
    loc: Option<(usize, usize)>,
    seq: u64,
    max_steps: u64,
    profile: Profile,
}

impl<'p, R: RegName> Vm<'p, R> {
    /// Creates a VM positioned at the program entry, with
    /// [`Program::reg_init`] and [`Program::mem_init`] applied.
    #[must_use]
    pub fn new(program: &'p Program<R>) -> Vm<'p, R> {
        let layout = program.layout();
        let mut regs = Vec::new();
        let mut mem = Memory::new();
        for &(reg, value) in &program.reg_init {
            write_slot(&mut regs, reg, value);
        }
        for &(addr, value) in &program.mem_init {
            mem.write(addr, value);
        }
        let loc = first_loc_from(program, 0);
        let profile = Profile::new(program.blocks.len());
        Vm { program, layout, regs, mem, loc, seq: 0, max_steps: DEFAULT_MAX_STEPS, profile }
    }

    /// Replaces the step cap (default [`DEFAULT_MAX_STEPS`]).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Vm<'p, R> {
        self.max_steps = max_steps;
        self
    }

    /// Runs until the program halts, discarding steps.
    ///
    /// # Errors
    ///
    /// Returns the first [`VmError`] encountered.
    pub fn run_to_end(&mut self) -> Result<u64, VmError> {
        let mut steps = 0;
        for step in self.by_ref() {
            step?;
            steps += 1;
        }
        Ok(steps)
    }

    /// Runs until the program halts, collecting every step.
    ///
    /// # Errors
    ///
    /// Returns the first [`VmError`] encountered.
    pub fn run_collect(&mut self) -> Result<Vec<Step<R>>, VmError> {
        let mut steps = Vec::with_capacity(self.static_len());
        for step in self.by_ref() {
            steps.push(step?);
        }
        Ok(steps)
    }

    /// The program's static instruction count — the trace length of a
    /// straight-line execution and a lower bound for looping ones, used
    /// to seed trace-vector capacity instead of growing from empty.
    #[must_use]
    pub fn static_len(&self) -> usize {
        self.program.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// The current value of `reg` (zero registers always read zero).
    #[must_use]
    pub fn reg(&self, reg: R) -> u64 {
        if reg.is_zero() {
            0
        } else {
            self.regs.get(reg.storage_index()).copied().unwrap_or(0)
        }
    }

    /// The current value of `reg` interpreted as a float.
    #[must_use]
    pub fn reg_f64(&self, reg: R) -> f64 {
        f64::from_bits(self.reg(reg))
    }

    /// The memory image.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The per-block execution profile accumulated so far.
    #[must_use]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The number of instructions executed so far.
    #[must_use]
    pub fn steps_executed(&self) -> u64 {
        self.seq
    }

    /// Whether execution has halted.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.loc.is_none()
    }

    /// The code layout used for PC computation.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    fn read(&self, reg: Option<R>) -> u64 {
        match reg {
            Some(r) => self.reg(r),
            None => 0,
        }
    }

    fn write(&mut self, reg: R, value: u64) {
        if !reg.is_zero() {
            write_slot(&mut self.regs, reg, value);
        }
    }

    /// The second operand of a binary operation: register if present,
    /// otherwise the immediate (operate-with-literal form).
    fn operand_b(&self, instr: &Instr<R>) -> u64 {
        match instr.srcs[1] {
            Some(r) => self.reg(r),
            None => instr.imm as u64,
        }
    }

    fn fallthrough_pc(&self, block: usize, index: usize) -> u64 {
        // Address of the next instruction in layout order; 0 if the
        // program ends here.
        match next_loc(self.program, block, index) {
            Some((b, i)) => self.layout.pc_of(BlockId::new(b), i),
            None => 0,
        }
    }

    fn block_pc(&self, target: BlockId) -> u64 {
        match first_loc_from(self.program, target.index()) {
            Some((b, i)) => self.layout.pc_of(BlockId::new(b), i),
            None => 0,
        }
    }

    fn execute_one(&mut self) -> Option<Result<Step<R>, VmError>> {
        let (bi, ii) = self.loc?;
        if self.seq >= self.max_steps {
            self.loc = None;
            return Some(Err(VmError::MaxStepsExceeded { limit: self.max_steps }));
        }
        if ii == 0 {
            self.profile.record(BlockId::new(bi));
        }
        let instr = self.program.blocks[bi].instrs[ii].clone();
        let pc = self.layout.pc_of(BlockId::new(bi), ii);
        let seq = self.seq;
        self.seq += 1;

        let mut mem_addr = None;
        let mut branch = None;
        // Where control goes next: None = fall through.
        let mut jump: Option<Option<(usize, usize)>> = None;

        use Opcode::*;
        match instr.op {
            // Integer operate.
            Mulq => self.bin_int(&instr, |a, b| a.wrapping_mul(b)),
            Addq => self.bin_int(&instr, |a, b| a.wrapping_add(b)),
            Subq => self.bin_int(&instr, |a, b| a.wrapping_sub(b)),
            And => self.bin_int(&instr, |a, b| a & b),
            Or => self.bin_int(&instr, |a, b| a | b),
            Xor => self.bin_int(&instr, |a, b| a ^ b),
            Sll => self.bin_int(&instr, |a, b| a.wrapping_shl(b as u32 & 63)),
            Srl => self.bin_int(&instr, |a, b| a.wrapping_shr(b as u32 & 63)),
            Sra => self.bin_int(&instr, |a, b| ((a as i64).wrapping_shr(b as u32 & 63)) as u64),
            Cmpeq => self.bin_int(&instr, |a, b| u64::from(a == b)),
            Cmplt => self.bin_int(&instr, |a, b| u64::from((a as i64) < (b as i64))),
            Cmple => self.bin_int(&instr, |a, b| u64::from((a as i64) <= (b as i64))),
            Cmpult => self.bin_int(&instr, |a, b| u64::from(a < b)),
            Lda => {
                let base = self.read(instr.srcs[0]);
                let value = base.wrapping_add(instr.imm as u64);
                self.write(instr.dest.expect("validated"), value);
            }

            // Floating point.
            Divs | Divt => self.bin_fp(&instr, |a, b| a / b),
            Sqrts | Sqrtt => self.un_fp(&instr, f64::sqrt),
            Addt => self.bin_fp(&instr, |a, b| a + b),
            Subt => self.bin_fp(&instr, |a, b| a - b),
            Mult => self.bin_fp(&instr, |a, b| a * b),
            Cmpteq => {
                let (a, b) = self.fp_operands(&instr);
                self.write(instr.dest.expect("validated"), u64::from(a == b));
            }
            Cmptlt => {
                let (a, b) = self.fp_operands(&instr);
                self.write(instr.dest.expect("validated"), u64::from(a < b));
            }
            Cvtqt => {
                let a = self.read(instr.srcs[0]) as i64;
                self.write(instr.dest.expect("validated"), (a as f64).to_bits());
            }
            Cvttq => {
                let a = f64::from_bits(self.read(instr.srcs[0]));
                self.write(instr.dest.expect("validated"), (a as i64) as u64);
            }
            Fmov => {
                let a = self.read(instr.srcs[0]);
                self.write(instr.dest.expect("validated"), a);
            }

            // Memory.
            Ldq | Ldt => {
                let addr = self.read(instr.srcs[0]).wrapping_add(instr.imm as u64);
                mem_addr = Some(addr & !7);
                let value = self.mem.read(addr);
                self.write(instr.dest.expect("validated"), value);
            }
            Stq | Stt => {
                let addr = self.read(instr.srcs[0]).wrapping_add(instr.imm as u64);
                mem_addr = Some(addr & !7);
                let value = self.read(instr.srcs[1]);
                self.mem.write(addr, value);
            }

            // Control flow.
            Br => {
                let target = instr.target.expect("validated");
                branch = Some(BranchInfo {
                    taken: true,
                    target_pc: self.block_pc(target),
                    conditional: false,
                });
                jump = Some(first_loc_from(self.program, target.index()));
            }
            Beq | Bne | Blt | Bge => {
                let cond = self.read(instr.srcs[0]);
                let taken = match instr.op {
                    Beq => cond == 0,
                    Bne => cond != 0,
                    Blt => (cond as i64) < 0,
                    Bge => (cond as i64) >= 0,
                    _ => unreachable!(),
                };
                let target = instr.target.expect("validated");
                let target_pc = if taken {
                    self.block_pc(target)
                } else {
                    self.fallthrough_pc(bi, ii)
                };
                branch = Some(BranchInfo { taken, target_pc, conditional: true });
                if taken {
                    jump = Some(first_loc_from(self.program, target.index()));
                }
            }
            Jsr => {
                let target = instr.target.expect("validated");
                let return_pc = self.fallthrough_pc(bi, ii);
                self.write(instr.dest.expect("validated"), return_pc);
                branch = Some(BranchInfo {
                    taken: true,
                    target_pc: self.block_pc(target),
                    conditional: false,
                });
                jump = Some(first_loc_from(self.program, target.index()));
            }
            Jmp | Ret => {
                let target_pc = self.read(instr.srcs[0]);
                branch = Some(BranchInfo { taken: true, target_pc, conditional: false });
                if target_pc == 0 {
                    jump = Some(None); // clean halt
                } else {
                    match self.layout.loc_of(target_pc) {
                        Some((b, i)) => jump = Some(Some((b.index(), i))),
                        None => {
                            self.loc = None;
                            return Some(Err(VmError::BadJump { pc: target_pc, seq }));
                        }
                    }
                }
            }
        }

        self.loc = match jump {
            Some(next) => next,
            None => next_loc(self.program, bi, ii),
        };

        Some(Ok(Step {
            seq,
            pc,
            block: BlockId::new(bi),
            index: ii,
            op: instr.op,
            dest: instr.dest.filter(|r| !r.is_zero()),
            srcs: [
                instr.srcs[0].filter(|r| !r.is_zero()),
                instr.srcs[1].filter(|r| !r.is_zero()),
            ],
            mem_addr,
            branch,
            sched_inserted: instr.sched_inserted,
        }))
    }

    fn bin_int(&mut self, instr: &Instr<R>, f: impl FnOnce(u64, u64) -> u64) {
        let a = self.read(instr.srcs[0]);
        let b = self.operand_b(instr);
        self.write(instr.dest.expect("validated"), f(a, b));
    }

    fn fp_operands(&self, instr: &Instr<R>) -> (f64, f64) {
        (
            f64::from_bits(self.read(instr.srcs[0])),
            f64::from_bits(self.read(instr.srcs[1])),
        )
    }

    fn bin_fp(&mut self, instr: &Instr<R>, f: impl FnOnce(f64, f64) -> f64) {
        let (a, b) = self.fp_operands(instr);
        self.write(instr.dest.expect("validated"), f(a, b).to_bits());
    }

    fn un_fp(&mut self, instr: &Instr<R>, f: impl FnOnce(f64) -> f64) {
        let a = f64::from_bits(self.read(instr.srcs[0]));
        self.write(instr.dest.expect("validated"), f(a).to_bits());
    }
}

impl<R: RegName> Iterator for Vm<'_, R> {
    type Item = Result<Step<R>, VmError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.execute_one()
    }
}

/// Convenience: executes a machine program to completion, returning the
/// trace as [`TraceOp`]s and the execution profile.
///
/// # Errors
///
/// Returns the first [`VmError`] encountered.
pub fn trace_program(program: &Program<ArchReg>) -> Result<(Vec<TraceOp>, Profile), VmError> {
    let mut vm = Vm::new(program);
    let mut ops = Vec::with_capacity(vm.static_len());
    for step in vm.by_ref() {
        ops.push(TraceOp::from(step?));
    }
    Ok((ops, vm.profile().clone()))
}

/// Like [`trace_program`], but collects directly into a
/// [`PackedTrace`](crate::PackedTrace) preallocated to `capacity_hint`
/// records (pass [`dynamic_len_estimate`] when a profile of the program
/// is available, or 0 to fall back to the static instruction count).
///
/// # Errors
///
/// Returns the first [`VmError`] encountered.
pub fn trace_program_packed(
    program: &Program<ArchReg>,
    capacity_hint: usize,
) -> Result<(crate::PackedTrace, Profile), VmError> {
    let mut vm = Vm::new(program);
    let capacity = capacity_hint.max(vm.static_len());
    let mut ops = crate::PackedTrace::with_capacity(capacity);
    for step in vm.by_ref() {
        ops.push(&TraceOp::from(step?));
    }
    Ok((ops, vm.profile().clone()))
}

/// Estimates a program's dynamic trace length from a per-block execution
/// profile: the profile-weighted sum of block sizes. Exact when the
/// profile came from an execution of a program with the same control
/// flow (e.g. its pre-allocation intermediate-language form).
#[must_use]
pub fn dynamic_len_estimate<R>(program: &Program<R>, profile: &Profile) -> usize {
    program
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| profile.count(BlockId::new(i)) as usize * b.instrs.len())
        .sum()
}

fn write_slot<R: RegName>(regs: &mut Vec<u64>, reg: R, value: u64) {
    let idx = reg.storage_index();
    if idx >= regs.len() {
        regs.resize(idx + 1, 0);
    }
    regs[idx] = value;
}

/// The first instruction location at or after block `from`, skipping
/// empty blocks; `None` if the program ends first.
fn first_loc_from<R>(program: &Program<R>, from: usize) -> Option<(usize, usize)> {
    (from..program.blocks.len()).find(|&b| !program.blocks[b].instrs.is_empty()).map(|b| (b, 0))
}

/// The location following (block, index), falling through to subsequent
/// blocks; `None` if the program ends.
fn next_loc<R>(program: &Program<R>, block: usize, index: usize) -> Option<(usize, usize)> {
    if index + 1 < program.blocks[block].instrs.len() {
        Some((block, index + 1))
    } else {
        first_loc_from(program, block + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::vreg::Vreg;

    #[test]
    fn arithmetic_semantics() {
        let mut b = ProgramBuilder::new("arith");
        let x = b.vreg_int("x");
        let y = b.vreg_int("y");
        let z = b.vreg_int("z");
        b.lda(x, 10);
        b.lda(y, -3);
        b.addq(z, x, y); // 7
        b.mulq(z, z, z); // 49
        b.subq_imm(z, z, 7); // 42
        b.sll_imm(z, z, 1); // 84
        b.sra_imm(z, z, 2); // 21
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.reg(z), 21);
    }

    #[test]
    fn signed_and_unsigned_compares_differ() {
        let mut b = ProgramBuilder::new("cmp");
        let neg = b.vreg_int("neg");
        let one = b.vreg_int("one");
        let s = b.vreg_int("s");
        let u = b.vreg_int("u");
        b.lda(neg, -1);
        b.lda(one, 1);
        b.cmplt(s, neg, one); // signed: -1 < 1 → 1
        b.cmpult(u, neg, one); // unsigned: u64::MAX < 1 → 0
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.reg(s), 1);
        assert_eq!(vm.reg(u), 0);
    }

    #[test]
    fn floating_point_semantics() {
        let mut b = ProgramBuilder::new("fp");
        let i = b.vreg_int("i");
        let f = b.vreg_fp("f");
        let g = b.vreg_fp("g");
        let h = b.vreg_fp("h");
        b.lda(i, 9);
        b.cvtqt(f, i); // 9.0
        b.sqrtt(g, f); // 3.0
        b.divt(h, f, g); // 3.0
        b.addt(h, h, g); // 6.0
        b.mult(h, h, h); // 36.0
        let back = b.vreg_int("back");
        b.cvttq(back, h);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.reg_f64(h), 36.0);
        assert_eq!(vm.reg(back), 36);
    }

    #[test]
    fn memory_roundtrip_and_effective_addresses() {
        let mut b = ProgramBuilder::new("mem");
        let base = b.vreg_int("base");
        let v = b.vreg_int("v");
        let out = b.vreg_int("out");
        b.lda(base, 0x2000);
        b.lda(v, 77);
        b.stq(base, 16, v);
        b.ldq(out, base, 16);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        assert_eq!(vm.reg(out), 77);
        assert_eq!(steps[2].mem_addr, Some(0x2010));
        assert_eq!(steps[3].mem_addr, Some(0x2010));
        assert_eq!(vm.memory().read(0x2010), 77);
    }

    #[test]
    fn loop_profile_and_branch_outcomes() {
        let mut b = ProgramBuilder::new("loop");
        let i = b.vreg_int("i");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.lda(i, 3);
        b.switch_to(body);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        b.switch_to(exit);
        b.lda(i, 99);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        // entry once, body 3 times, exit once.
        assert_eq!(vm.profile().count(BlockId::new(0)), 1);
        assert_eq!(vm.profile().count(BlockId::new(1)), 3);
        assert_eq!(vm.profile().count(BlockId::new(2)), 1);
        // The bne is taken twice, then falls through.
        let branches: Vec<bool> = steps
            .iter()
            .filter_map(|s| s.branch.map(|b| b.taken))
            .collect();
        assert_eq!(branches, vec![true, true, false]);
        assert_eq!(vm.reg(i), 99);
    }

    #[test]
    fn branch_target_pcs_match_layout() {
        let mut b = ProgramBuilder::new("t");
        let i = b.vreg_int("i");
        let body = b.new_block("body");
        b.lda(i, 1);
        b.switch_to(body);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let layout = p.layout();
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        let br = steps.last().unwrap().branch.unwrap();
        assert!(!br.taken);
        // Not taken and the program ends: fall-through pc is 0.
        assert_eq!(br.target_pc, 0);
        // The body block's first instruction follows the entry block.
        assert_eq!(layout.pc_of(BlockId::new(1), 0), Layout::CODE_BASE + 4);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new("call");
        let link = b.vreg_int("link");
        let halt = b.vreg_int("halt");
        let x = b.vreg_int("x");
        let after = b.new_block("after");
        let callee = b.new_block("callee");
        // Layout: entry (ends in jsr), after (the return point, halts),
        // callee (last, so the subroutine never runs by fallthrough).
        b.lda(x, 1);
        b.lda(halt, 0);
        b.jsr(link, callee);
        b.switch_to(after);
        b.addq_imm(x, x, 100);
        b.ret(halt); // ret to address 0 halts
        b.switch_to(callee);
        b.addq_imm(x, x, 10);
        b.ret(link);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        // jsr's return address is its fall-through (the `after` block),
        // so x = 1 + 10 (callee) + 100 (after).
        assert_eq!(vm.reg(x), 111);
    }

    #[test]
    fn ret_to_zero_halts() {
        let mut b = ProgramBuilder::new("halt");
        let link = b.vreg_int("link");
        let x = b.vreg_int("x");
        b.lda(link, 0);
        b.lda(x, 5);
        b.ret(link);
        // Unreachable tail block.
        let tail = b.new_block("tail");
        b.switch_to(tail);
        b.lda(x, 9);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert!(vm.is_halted());
        assert_eq!(vm.reg(x), 5);
    }

    #[test]
    fn bad_jump_is_reported() {
        let mut b = ProgramBuilder::new("bad");
        let link = b.vreg_int("link");
        b.lda(link, 0x3); // unaligned, not a code address
        b.ret(link);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        let err = vm.run_to_end().unwrap_err();
        assert_eq!(err, VmError::BadJump { pc: 3, seq: 1 });
    }

    #[test]
    fn max_steps_guard_trips() {
        let mut b = ProgramBuilder::<Vreg>::new("inf");
        let loop_ = b.new_block("loop");
        b.br(loop_);
        b.switch_to(loop_);
        b.br(loop_);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p).with_max_steps(100);
        let err = vm.run_to_end().unwrap_err();
        assert_eq!(err, VmError::MaxStepsExceeded { limit: 100 });
    }

    #[test]
    fn zero_register_semantics_in_machine_programs() {
        use mcl_isa::ArchReg;
        let mut b = ProgramBuilder::<ArchReg>::new("zero");
        let r2 = ArchReg::int(2);
        b.lda(r2, 5);
        b.mov(ArchReg::ZERO, r2); // discarded
        b.addq(r2, ArchReg::ZERO, r2); // 0 + 5
        let p = b.finish().unwrap();
        let (trace, _) = trace_program(&p).unwrap();
        assert_eq!(trace.len(), 3);
        // The zero-register write is reported as no destination.
        assert_eq!(trace[1].dest, None);
        // The zero-register read carries no dependence.
        assert_eq!(trace[2].srcs[0], None);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.reg(r2), 5);
        assert_eq!(vm.reg(ArchReg::ZERO), 0);
    }

    #[test]
    fn empty_blocks_are_skipped() {
        let mut b = ProgramBuilder::new("skip");
        let x = b.vreg_int("x");
        let empty = b.new_block("empty");
        let tail = b.new_block("tail");
        b.lda(x, 1);
        b.br(empty); // lands on tail via the empty block
        b.switch_to(tail);
        b.addq_imm(x, x, 1);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.reg(x), 2);
        assert_eq!(vm.profile().count(empty), 0);
        assert_eq!(vm.profile().count(tail), 1);
    }

    #[test]
    fn steps_convert_to_trace_ops() {
        use mcl_isa::ArchReg;
        let mut b = ProgramBuilder::<ArchReg>::new("conv");
        b.lda(ArchReg::int(2), 1);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p);
        let step = vm.next().unwrap().unwrap();
        let op = TraceOp::from(step);
        assert_eq!(op.pc, Layout::CODE_BASE);
        assert_eq!(op.seq, 0);
        assert_eq!(op.dest, Some(ArchReg::int(2)));
    }

    #[test]
    fn vreg_and_archreg_programs_compute_identically() {
        // The same computation in both name spaces gives the same result
        // (golden-model property used heavily by mcl-sched tests).
        let mut bi = ProgramBuilder::<Vreg>::new("il");
        let a = bi.vreg_int("a");
        bi.lda(a, 6);
        bi.mulq_imm(a, a, 7);
        let il = bi.finish().unwrap();
        let mut vm_il = Vm::new(&il);
        vm_il.run_to_end().unwrap();

        use mcl_isa::ArchReg;
        let mut bm = ProgramBuilder::<ArchReg>::new("mach");
        let r = ArchReg::int(4);
        bm.lda(r, 6);
        bm.mulq_imm(r, r, 7);
        let mach = bm.finish().unwrap();
        let mut vm_m = Vm::new(&mach);
        vm_m.run_to_end().unwrap();

        assert_eq!(vm_il.reg(a), vm_m.reg(r));
        assert_eq!(vm_il.reg(a), 42);
    }
}
