//! Execution profiles.


use crate::program::BlockId;

/// A per-basic-block execution profile.
///
/// The paper's local scheduler sorts basic blocks "according to the
/// number of times the first instruction in each basic block is estimated
/// to be executed", with "estimates derived from profiling the execution
/// of the application" — this type carries those estimates. Profiles are
/// produced by [`crate::Vm`] runs and consumed by `mcl-sched`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    counts: Vec<u64>,
}

impl Profile {
    /// An all-zero profile for a program with `blocks` basic blocks.
    #[must_use]
    pub fn new(blocks: usize) -> Profile {
        Profile { counts: vec![0; blocks] }
    }

    /// Builds a profile from explicit counts (e.g. the annotations of the
    /// paper's Figure 6).
    #[must_use]
    pub fn from_counts(counts: Vec<u64>) -> Profile {
        Profile { counts }
    }

    /// Records one execution of `block`.
    pub fn record(&mut self, block: BlockId) {
        if block.index() >= self.counts.len() {
            self.counts.resize(block.index() + 1, 0);
        }
        self.counts[block.index()] += 1;
    }

    /// The execution estimate for `block` (0 for unknown blocks).
    #[must_use]
    pub fn count(&self, block: BlockId) -> u64 {
        self.counts.get(block.index()).copied().unwrap_or(0)
    }

    /// The number of blocks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the profile covers no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total block executions recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut p = Profile::new(2);
        p.record(BlockId::new(0));
        p.record(BlockId::new(0));
        p.record(BlockId::new(1));
        assert_eq!(p.count(BlockId::new(0)), 2);
        assert_eq!(p.count(BlockId::new(1)), 1);
        assert_eq!(p.total(), 3);
    }

    #[test]
    fn recording_grows_the_table() {
        let mut p = Profile::new(1);
        p.record(BlockId::new(5));
        assert_eq!(p.count(BlockId::new(5)), 1);
        assert_eq!(p.count(BlockId::new(4)), 0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn figure6_style_counts() {
        // The paper's Figure 6 annotates blocks with estimates
        // (20, 10, 10, 100, 20).
        let p = Profile::from_counts(vec![20, 10, 10, 100, 20]);
        assert_eq!(p.count(BlockId::new(3)), 100);
        assert!(!p.is_empty());
    }
}
