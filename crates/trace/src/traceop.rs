//! Dynamic-instruction records consumed by the cycle-level simulator.

use mcl_isa::{ArchReg, InstrClass, Opcode};

/// The dynamic outcome of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether control actually transferred (conditional branches may
    /// fall through).
    pub taken: bool,
    /// The address control transferred to (the fall-through address when
    /// not taken; 0 denotes program exit).
    pub target_pc: u64,
    /// Whether the branch predictor must predict this instruction
    /// (conditional branches only; the paper assumes all other control
    /// flow is 100 % predictable).
    pub conditional: bool,
}

/// One dynamic instruction of a trace: what the processor front end sees,
/// in fetch order, annotated with the execution-time facts (memory
/// address, branch outcome) a trace-driven simulator needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Position in the dynamic instruction stream (0-based).
    pub seq: u64,
    /// The instruction's address.
    pub pc: u64,
    /// The operation.
    pub op: Opcode,
    /// Destination architectural register, if any (hardwired zeros are
    /// reported as `None`).
    pub dest: Option<ArchReg>,
    /// Source architectural registers (hardwired zeros reported as
    /// `None`: they carry no dependence).
    pub srcs: [Option<ArchReg>; 2],
    /// Effective memory address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Control-flow outcome, for control-flow instructions.
    pub branch: Option<BranchInfo>,
    /// Scheduler provenance: the static instruction was inserted by
    /// the scheduling pass (spill code for cross-cluster live-range
    /// splits), not the workload. Lets attribution charge these ops'
    /// cycles to the scheduler that created them.
    pub sched_inserted: bool,
}

impl TraceOp {
    /// The Table 1 instruction class.
    #[must_use]
    pub fn class(&self) -> InstrClass {
        self.op.class()
    }

    /// Iterates over the non-zero source registers.
    pub fn reads(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Whether this is a conditional branch the predictor must handle.
    #[must_use]
    pub fn is_conditional_branch(&self) -> bool {
        self.branch.is_some_and(|b| b.conditional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_flag_comes_from_branch_info() {
        let mut op = TraceOp {
            seq: 0,
            pc: 0x1000,
            op: Opcode::Beq,
            dest: None,
            srcs: [Some(ArchReg::int(2)), None],
            mem_addr: None,
            branch: Some(BranchInfo { taken: true, target_pc: 0x2000, conditional: true }),
            sched_inserted: false,
        };
        assert!(op.is_conditional_branch());
        op.branch = Some(BranchInfo { taken: true, target_pc: 0x2000, conditional: false });
        assert!(!op.is_conditional_branch());
        op.branch = None;
        assert!(!op.is_conditional_branch());
    }

    #[test]
    fn reads_flattens_sources() {
        let op = TraceOp {
            seq: 1,
            pc: 0x1004,
            op: Opcode::Addq,
            dest: Some(ArchReg::int(6)),
            srcs: [Some(ArchReg::int(2)), Some(ArchReg::int(4))],
            mem_addr: None,
            branch: None,
            sched_inserted: false,
        };
        assert_eq!(op.reads().count(), 2);
    }
}
