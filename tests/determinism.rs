//! Everything in the reproduction is deterministic: building the same
//! workload, scheduling it, and simulating it twice must give identical
//! results, bit for bit.

use multicluster::core::{Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{SchedulePipeline, SchedulerKind};
use multicluster::trace::vm::trace_program;
use multicluster::workloads::Benchmark;

#[test]
fn workload_construction_is_deterministic() {
    for bench in Benchmark::ALL {
        let a = bench.build(50);
        let b = bench.build(50);
        assert_eq!(a, b, "{bench}");
    }
}

#[test]
fn scheduling_is_deterministic() {
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    for bench in Benchmark::ALL {
        let il = bench.build(30);
        for kind in [SchedulerKind::Naive, SchedulerKind::Local] {
            let a = SchedulePipeline::new(kind, &assign).run(&il).unwrap();
            let b = SchedulePipeline::new(kind, &assign).run(&il).unwrap();
            assert_eq!(a.program, b.program, "{bench}/{kind:?}");
        }
    }
}

#[test]
fn tracing_and_simulation_are_deterministic() {
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let il = Benchmark::Gcc1.build(100);
    let scheduled = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il).unwrap();
    let (trace_a, profile_a) = trace_program(&scheduled.program).unwrap();
    let (trace_b, profile_b) = trace_program(&scheduled.program).unwrap();
    assert_eq!(trace_a, trace_b);
    assert_eq!(profile_a, profile_b);

    for cfg in [ProcessorConfig::single_cluster_8way(), ProcessorConfig::dual_cluster_8way()] {
        let a = Processor::new(cfg.clone()).run_trace(&trace_a).unwrap();
        let b = Processor::new(cfg).run_trace(&trace_a).unwrap();
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn event_logs_are_deterministic() {
    let il = Benchmark::Compress.build(50);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let scheduled = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il).unwrap();
    let (trace, _) = trace_program(&scheduled.program).unwrap();
    let cfg = ProcessorConfig::dual_cluster_8way().with_events();
    let a = Processor::new(cfg.clone()).run_trace(&trace).unwrap();
    let b = Processor::new(cfg).run_trace(&trace).unwrap();
    assert_eq!(a.events, b.events);
}
