//! End-to-end integration: IL authoring → scheduling → trace generation
//! → cycle-level simulation, across crates.

use multicluster::core::{Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{SchedulePipeline, SchedulerKind};
use multicluster::trace::{vm::trace_program, Program, ProgramBuilder, Vm, Vreg};
use multicluster::workloads::{microkernels, Benchmark};

/// Schedules with every scheduler kind and checks the machine program
/// computes what the IL computes (memory-visible state).
fn check_all_schedulers(il: &Program<Vreg>, observe: &[u64]) {
    let mut vm = Vm::new(il);
    vm.run_to_end().expect("IL runs");
    let golden: Vec<u64> = observe.iter().map(|&a| vm.memory().read(a)).collect();

    for clusters in [1u8, 2] {
        let assign = if clusters == 1 {
            RegisterAssignment::single_cluster()
        } else {
            RegisterAssignment::even_odd_with_default_globals(2)
        };
        for kind in [
            SchedulerKind::Naive,
            SchedulerKind::Local,
            SchedulerKind::LocalNoGlobals,
            SchedulerKind::RoundRobin,
            SchedulerKind::BankSplit,
        ] {
            let scheduled = SchedulePipeline::new(kind, &assign)
                .run(il)
                .unwrap_or_else(|e| panic!("{kind:?}/{clusters} clusters: {e}"));
            let mut vm = Vm::new(&scheduled.program);
            vm.run_to_end().expect("machine program runs");
            for (&addr, &expect) in observe.iter().zip(&golden) {
                assert_eq!(
                    vm.memory().read(addr),
                    expect,
                    "{kind:?}/{clusters} clusters at {addr:#x}"
                );
            }
        }
    }
}

#[test]
fn microkernels_survive_every_scheduler() {
    check_all_schedulers(&microkernels::dependent_chain(40), &[0x4000]);
    check_all_schedulers(&microkernels::parallel_chains(6, 12), &[0x4000, 0x4008, 0x4028]);
    check_all_schedulers(&microkernels::pingpong(8), &[0x4000, 0x4008]);
    check_all_schedulers(&microkernels::divider_chain(10), &[0x4000]);
}

#[test]
fn benchmarks_schedule_and_simulate_on_both_machines() {
    for bench in Benchmark::ALL {
        let il = bench.build((bench.default_scale() / 100).max(1));
        let assign = RegisterAssignment::even_odd_with_default_globals(2);
        let native =
            SchedulePipeline::new(SchedulerKind::Naive, &assign).run(&il).expect("native");
        let local =
            SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il).expect("local");

        let (native_trace, _) = trace_program(&native.program).expect("trace");
        let (local_trace, _) = trace_program(&local.program).expect("trace");
        assert!(!native_trace.is_empty());

        let single = Processor::new(ProcessorConfig::single_cluster_8way())
            .run_trace(&native_trace)
            .expect("single simulates");
        let dual = Processor::new(ProcessorConfig::dual_cluster_8way())
            .run_trace(&native_trace)
            .expect("dual/native simulates");
        let dual_local = Processor::new(ProcessorConfig::dual_cluster_8way())
            .run_trace(&local_trace)
            .expect("dual/local simulates");

        // Every instruction retires exactly once.
        assert_eq!(single.stats.retired, native_trace.len() as u64, "{bench}");
        assert_eq!(dual.stats.retired, native_trace.len() as u64, "{bench}");
        assert_eq!(dual_local.stats.retired, local_trace.len() as u64, "{bench}");

        // The single-cluster machine never dual-distributes; the dual
        // machine does for the native binary.
        assert_eq!(single.stats.dual_distributed, 0, "{bench}");
        assert!(dual.stats.dual_distributed > 0, "{bench}");

        // The local scheduler reduces dual distribution (the paper's
        // stated effect).
        assert!(
            dual_local.stats.dual_fraction() < dual.stats.dual_fraction(),
            "{bench}: local {} vs none {}",
            dual_local.stats.dual_fraction(),
            dual.stats.dual_fraction()
        );
    }
}

#[test]
fn spilled_programs_still_simulate_correctly() {
    // Force memory spills with extreme register pressure.
    let mut b = ProgramBuilder::new("pressure");
    let vs: Vec<Vreg> = (0..45).map(|i| b.vreg_int(&format!("v{i}"))).collect();
    for (i, &v) in vs.iter().enumerate() {
        b.lda(v, i as i64 * 3 + 1);
    }
    let out = b.vreg_int("out");
    b.lda(out, 0x6000);
    for (i, &v) in vs.iter().enumerate() {
        b.stq(out, (i as i64) * 8, v);
    }
    let il = b.finish().unwrap();
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    // Keep the authored order: the prepass list scheduler would otherwise
    // interleave definitions and stores and dissolve the pressure.
    let options = multicluster::sched::ScheduleOptions {
        prepass_schedule: false,
        ..Default::default()
    };
    let scheduled = SchedulePipeline::new(SchedulerKind::Local, &assign)
        .with_options(options)
        .run(&il)
        .unwrap();
    assert!(scheduled.stats.spill.memory_spills > 0, "expected spills");

    let mut vm = Vm::new(&scheduled.program);
    vm.run_to_end().unwrap();
    for (i, _) in vs.iter().enumerate() {
        assert_eq!(vm.memory().read(0x6000 + (i as u64) * 8), i as u64 * 3 + 1);
    }

    let result = Processor::new(ProcessorConfig::dual_cluster_8way())
        .run_program(&scheduled.program)
        .unwrap();
    assert!(result.stats.cycles > 0);
}

#[test]
fn four_way_configurations_run_the_suite() {
    let bench = Benchmark::Compress;
    let il = bench.build(200);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let native = SchedulePipeline::new(SchedulerKind::Naive, &assign).run(&il).unwrap();
    let (trace, _) = trace_program(&native.program).unwrap();
    let single4 =
        Processor::new(ProcessorConfig::single_cluster_4way()).run_trace(&trace).unwrap();
    let dual2 =
        Processor::new(ProcessorConfig::dual_cluster_4way()).run_trace(&trace).unwrap();
    assert_eq!(single4.stats.retired, trace.len() as u64);
    assert_eq!(dual2.stats.retired, trace.len() as u64);
    // The narrower machines are slower than their 8-way counterparts.
    let single8 =
        Processor::new(ProcessorConfig::single_cluster_8way()).run_trace(&trace).unwrap();
    assert!(single4.stats.cycles >= single8.stats.cycles);
}
