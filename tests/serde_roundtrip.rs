//! Serialization round-trips: configurations, programs, traces, and
//! statistics survive serde (the bench harness persists all of these).

use multicluster::core::{Processor, ProcessorConfig, SimStats};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::trace::{vm::trace_program, Program, TraceOp, Vreg};
use multicluster::workloads::Benchmark;

fn json_roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let text = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&text).expect("deserializes")
}

#[test]
fn processor_configs_roundtrip() {
    for cfg in [
        ProcessorConfig::single_cluster_8way(),
        ProcessorConfig::dual_cluster_8way(),
        ProcessorConfig::single_cluster_4way(),
        ProcessorConfig::dual_cluster_4way(),
    ] {
        assert_eq!(json_roundtrip(&cfg), cfg);
    }
}

#[test]
fn register_assignments_roundtrip() {
    for assign in [
        RegisterAssignment::single_cluster(),
        RegisterAssignment::even_odd_with_default_globals(2),
    ] {
        assert_eq!(json_roundtrip(&assign), assign);
    }
}

#[test]
fn programs_and_traces_roundtrip() {
    let il: Program<Vreg> = Benchmark::Gcc1.build(20);
    assert_eq!(json_roundtrip(&il), il);

    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let scheduled = multicluster::sched::SchedulePipeline::new(
        multicluster::sched::SchedulerKind::Local,
        &assign,
    )
    .run(&il)
    .unwrap();
    assert_eq!(json_roundtrip(&scheduled.program), scheduled.program);

    let (trace, _) = trace_program(&scheduled.program).unwrap();
    let roundtripped: Vec<TraceOp> = json_roundtrip(&trace);
    assert_eq!(roundtripped, trace);
}

#[test]
fn stats_roundtrip_after_a_real_run() {
    let il = Benchmark::Compress.build(50);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let scheduled = multicluster::sched::SchedulePipeline::new(
        multicluster::sched::SchedulerKind::Local,
        &assign,
    )
    .run(&il)
    .unwrap();
    let result = Processor::new(ProcessorConfig::dual_cluster_8way())
        .run_program(&scheduled.program)
        .unwrap();
    let stats: SimStats = json_roundtrip(&result.stats);
    assert_eq!(stats, result.stats);
}
