//! Cycle-accurate checks of the five dual-execution scenarios against
//! the timing rules of Section 2.1 (the paper's Figures 2–5).

use multicluster::core::{EventKind, EventLog, Processor, ProcessorConfig};
use multicluster::trace::vm::trace_program;
use multicluster::workloads::scenarios::{self, Scenario};

fn run(s: &Scenario) -> (EventLog, [u64; 5]) {
    let (trace, _) = trace_program(&s.program).expect("trace");
    let result = Processor::new(ProcessorConfig::dual_cluster_8way().with_events())
        .run_trace(&trace)
        .expect("simulates");
    (result.events.expect("events"), result.stats.scenario)
}

fn cycle_of(events: &EventLog, seq: u64, kind: EventKind) -> Option<u64> {
    events.for_seq(seq).find(|e| e.kind == kind).map(|e| e.cycle)
}

#[test]
fn scenario1_single_distribution() {
    let s = scenarios::scenario1();
    let (events, counts) = run(&s);
    assert_eq!(counts[0], 3, "all three instructions single-distributed");
    assert!(cycle_of(&events, s.add_seq, EventKind::SlaveIssued).is_none());
}

#[test]
fn scenario2_master_issues_the_cycle_after_the_slave() {
    // "The dependence between the master copy and the slave copy is
    // removed when the slave copy is issued, thereby permitting the
    // master copy to be issued as soon as the next cycle."
    let s = scenarios::scenario2();
    let (events, counts) = run(&s);
    assert_eq!(counts[1], 1);
    let slave = cycle_of(&events, s.add_seq, EventKind::SlaveIssued).expect("slave issued");
    let master = cycle_of(&events, s.add_seq, EventKind::MasterIssued).expect("master issued");
    assert_eq!(master, slave + 1, "master follows the slave by one cycle");
    // The operand lands in the transfer buffer at the slave's writeback.
    let operand =
        cycle_of(&events, s.add_seq, EventKind::OperandWritten).expect("operand written");
    assert_eq!(operand, slave + 1);
    // No result forwarding in scenario two.
    assert!(cycle_of(&events, s.add_seq, EventKind::ResultWritten).is_none());
}

#[test]
fn scenario3_slave_issues_before_master_completion() {
    // "This dependence is removed two cycles before the master copy is
    // due to finish ... for simple one-cycle latency instructions like
    // the add, the slave copy can be issued as soon as one cycle after
    // the master copy is issued."
    let s = scenarios::scenario3();
    let (events, counts) = run(&s);
    assert_eq!(counts[2], 1);
    let master = cycle_of(&events, s.add_seq, EventKind::MasterIssued).expect("master");
    let slave = cycle_of(&events, s.add_seq, EventKind::SlaveIssued).expect("slave");
    assert_eq!(slave, master + 1, "one-cycle add: slave issues one cycle after master");
    // The slave writes the destination register the cycle after it
    // issues.
    let written = events
        .for_seq(s.add_seq)
        .filter(|e| e.kind == EventKind::RegWritten)
        .map(|e| e.cycle)
        .max()
        .expect("register written");
    assert_eq!(written, slave + 1);
}

#[test]
fn scenario4_both_clusters_write_the_global_destination() {
    let s = scenarios::scenario4();
    let (events, counts) = run(&s);
    assert_eq!(counts[3], 1);
    let writes: Vec<_> =
        events.for_seq(s.add_seq).filter(|e| e.kind == EventKind::RegWritten).collect();
    assert_eq!(writes.len(), 2, "one register write per cluster");
    let clusters: std::collections::HashSet<_> =
        writes.iter().filter_map(|e| e.cluster).collect();
    assert_eq!(clusters.len(), 2, "the writes land in different clusters");
}

#[test]
fn scenario5_slave_suspends_then_wakes() {
    let s = scenarios::scenario5();
    let (events, counts) = run(&s);
    assert_eq!(counts[4], 1);
    let slave = cycle_of(&events, s.add_seq, EventKind::SlaveIssued).expect("slave issues");
    let suspended =
        cycle_of(&events, s.add_seq, EventKind::SlaveSuspended).expect("slave suspends");
    let master = cycle_of(&events, s.add_seq, EventKind::MasterIssued).expect("master");
    let woke = cycle_of(&events, s.add_seq, EventKind::SlaveWoke).expect("slave wakes");
    assert!(slave < master, "slave forwards the operand before the master computes");
    assert_eq!(suspended, slave + 1);
    assert!(woke > master, "the wake follows the master's completion");
    // Both register copies get written, the master's first.
    let mut writes: Vec<u64> = events
        .for_seq(s.add_seq)
        .filter(|e| e.kind == EventKind::RegWritten)
        .map(|e| e.cycle)
        .collect();
    writes.sort_unstable();
    assert_eq!(writes.len(), 2);
    assert!(writes[0] <= writes[1]);
}

#[test]
fn every_scenario_retires_and_classifies_exactly_once() {
    for s in scenarios::all() {
        let (events, counts) = run(&s);
        assert!(
            cycle_of(&events, s.add_seq, EventKind::Retired).is_some(),
            "scenario {} add retired",
            s.number
        );
        assert!(
            counts[usize::from(s.number - 1)] >= 1,
            "scenario {} classified (counts: {counts:?})",
            s.number
        );
    }
}
