//! Property-based tests over randomly generated programs: the
//! scheduling pipeline must preserve semantics, partitioning must be
//! total, and the simulator must retire exactly the trace.

use multicluster::core::{Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{
    LocalScheduler, Partition, PartitionConfig, SchedulePipeline, SchedulerKind,
};
use multicluster::trace::{vm::trace_program, Profile, Program, ProgramBuilder, Vm, Vreg};
use proptest::prelude::*;

/// One randomly chosen straight-line operation over a small register
/// pool.
#[derive(Debug, Clone)]
enum RandOp {
    Lda { dest: usize, imm: i64 },
    Add { dest: usize, a: usize, b: usize },
    Sub { dest: usize, a: usize, b: usize },
    Mul { dest: usize, a: usize, b: usize },
    Xor { dest: usize, a: usize, b: usize },
    Shift { dest: usize, a: usize, by: u8 },
    FCvt { dest: usize, a: usize },
    FAdd { dest: usize, a: usize, b: usize },
    FMul { dest: usize, a: usize, b: usize },
    Store { addr_slot: usize, val: usize },
    Load { dest: usize, addr_slot: usize },
}

const POOL: usize = 10;
const FPOOL: usize = 6;
const SLOTS: usize = 4;

fn rand_op() -> impl Strategy<Value = RandOp> {
    prop_oneof![
        (0..POOL, -1000i64..1000).prop_map(|(dest, imm)| RandOp::Lda { dest, imm }),
        (0..POOL, 0..POOL, 0..POOL).prop_map(|(dest, a, b)| RandOp::Add { dest, a, b }),
        (0..POOL, 0..POOL, 0..POOL).prop_map(|(dest, a, b)| RandOp::Sub { dest, a, b }),
        (0..POOL, 0..POOL, 0..POOL).prop_map(|(dest, a, b)| RandOp::Mul { dest, a, b }),
        (0..POOL, 0..POOL, 0..POOL).prop_map(|(dest, a, b)| RandOp::Xor { dest, a, b }),
        (0..POOL, 0..POOL, 0u8..40).prop_map(|(dest, a, by)| RandOp::Shift { dest, a, by }),
        (0..FPOOL, 0..POOL).prop_map(|(dest, a)| RandOp::FCvt { dest, a }),
        (0..FPOOL, 0..FPOOL, 0..FPOOL).prop_map(|(dest, a, b)| RandOp::FAdd { dest, a, b }),
        (0..FPOOL, 0..FPOOL, 0..FPOOL).prop_map(|(dest, a, b)| RandOp::FMul { dest, a, b }),
        (0..SLOTS, 0..POOL).prop_map(|(addr_slot, val)| RandOp::Store { addr_slot, val }),
        (0..POOL, 0..SLOTS).prop_map(|(dest, addr_slot)| RandOp::Load { dest, addr_slot }),
    ]
}

/// Builds a valid straight-line program from random operations and
/// returns it plus the observation addresses.
fn build_program(ops: &[RandOp]) -> (Program<Vreg>, Vec<u64>) {
    let mut b = ProgramBuilder::new("random");
    let ints: Vec<Vreg> = (0..POOL).map(|i| b.vreg_int(&format!("r{i}"))).collect();
    let fps: Vec<Vreg> = (0..FPOOL).map(|i| b.vreg_fp(&format!("f{i}"))).collect();
    // Give every register a defined initial value so reads are total.
    for (i, &v) in ints.iter().enumerate() {
        b.reg_init(v, i as u64 * 17 + 3);
    }
    for (i, &v) in fps.iter().enumerate() {
        b.reg_init(v, ((i + 1) as f64).to_bits());
    }
    let base = 0x5000u64;
    for op in ops {
        match *op {
            RandOp::Lda { dest, imm } => b.lda(ints[dest], imm),
            RandOp::Add { dest, a, b: c } => b.addq(ints[dest], ints[a], ints[c]),
            RandOp::Sub { dest, a, b: c } => b.subq(ints[dest], ints[a], ints[c]),
            RandOp::Mul { dest, a, b: c } => b.mulq(ints[dest], ints[a], ints[c]),
            RandOp::Xor { dest, a, b: c } => b.xor(ints[dest], ints[a], ints[c]),
            RandOp::Shift { dest, a, by } => b.sll_imm(ints[dest], ints[a], i64::from(by)),
            RandOp::FCvt { dest, a } => b.cvtqt(fps[dest], ints[a]),
            RandOp::FAdd { dest, a, b: c } => b.addt(fps[dest], fps[a], fps[c]),
            RandOp::FMul { dest, a, b: c } => b.mult(fps[dest], fps[a], fps[c]),
            RandOp::Store { addr_slot, val } => {
                let addr = b.vreg_int("addr");
                b.lda(addr, (base + addr_slot as u64 * 8) as i64);
                b.stq(addr, 0, ints[val]);
            }
            RandOp::Load { dest, addr_slot } => {
                let addr = b.vreg_int("addr");
                b.lda(addr, (base + addr_slot as u64 * 8) as i64);
                b.ldq(ints[dest], addr, 0);
            }
        }
    }
    // Publish every integer register so the whole state is observable.
    let out = b.vreg_int("out");
    b.lda(out, 0x7000);
    for (i, &v) in ints.iter().enumerate() {
        b.stq(out, (i as i64) * 8, v);
    }
    for (i, &v) in fps.iter().enumerate() {
        b.stt(out, ((POOL + i) as i64) * 8, v);
    }
    let observe: Vec<u64> = (0..POOL + FPOOL).map(|i| 0x7000 + i as u64 * 8).collect();
    (b.finish().expect("generated program is valid"), observe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheduling_preserves_semantics(ops in prop::collection::vec(rand_op(), 1..60)) {
        let (il, observe) = build_program(&ops);
        let mut vm = Vm::new(&il);
        vm.run_to_end().unwrap();
        let golden: Vec<u64> = observe.iter().map(|&a| vm.memory().read(a)).collect();

        let assign = RegisterAssignment::even_odd_with_default_globals(2);
        for kind in [
            SchedulerKind::Naive,
            SchedulerKind::Local,
            SchedulerKind::RoundRobin,
            SchedulerKind::BankSplit,
        ] {
            let scheduled = SchedulePipeline::new(kind, &assign).run(&il).unwrap();
            let mut vm = Vm::new(&scheduled.program);
            vm.run_to_end().unwrap();
            for (&addr, &expect) in observe.iter().zip(&golden) {
                prop_assert_eq!(vm.memory().read(addr), expect, "{:?} at {:#x}", kind, addr);
            }
        }
    }

    #[test]
    fn partitioning_is_total(ops in prop::collection::vec(rand_op(), 1..60)) {
        let (il, _) = build_program(&ops);
        let profile = Profile::from_counts(vec![1; il.blocks.len()]);
        let part = LocalScheduler::new(PartitionConfig::default()).partition(&il, &profile);
        for block in &il.blocks {
            for instr in &block.instrs {
                for r in instr.named_regs() {
                    prop_assert!(
                        part.is_global(r) || part.cluster_of(r).is_some(),
                        "{} unassigned", r
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_retires_the_whole_trace(ops in prop::collection::vec(rand_op(), 1..40)) {
        let (il, _) = build_program(&ops);
        let assign = RegisterAssignment::even_odd_with_default_globals(2);
        let scheduled = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il).unwrap();
        let (trace, _) = trace_program(&scheduled.program).unwrap();
        for cfg in [ProcessorConfig::single_cluster_8way(), ProcessorConfig::dual_cluster_8way()] {
            let retire_width = cfg.retire_width;
            let result = Processor::new(cfg).run_trace(&trace).unwrap();
            prop_assert_eq!(result.stats.retired, trace.len() as u64);
            // Retirement is bounded by width.
            prop_assert!(
                result.stats.cycles >= trace.len() as u64 / u64::from(retire_width)
            );
        }
    }

    #[test]
    fn round_robin_partition_counts_are_balanced(ops in prop::collection::vec(rand_op(), 1..60)) {
        let (il, _) = build_program(&ops);
        let part = Partition::round_robin(&il, 2);
        let counts = part.counts(2);
        prop_assert!(counts[0].abs_diff(counts[1]) <= 1, "{:?}", counts);
    }
}
