//! Property-based tests over randomly generated programs: the
//! scheduling pipeline must preserve semantics, partitioning must be
//! total, and the simulator must retire exactly the trace.
//!
//! Cases are generated with the dependency-free [`mcl_testutil::Rng`]
//! (the build has no registry access, so `proptest` is unavailable);
//! seeds are fixed, so every run checks the same cases.

use multicluster::core::{Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{
    LocalScheduler, Partition, PartitionConfig, SchedulePipeline, SchedulerKind,
};
use multicluster::trace::{vm::trace_program, Profile, Program, ProgramBuilder, Vm, Vreg};

use mcl_testutil::{check_cases, Rng};

/// One randomly chosen straight-line operation over a small register
/// pool.
#[derive(Debug, Clone)]
enum RandOp {
    Lda { dest: usize, imm: i64 },
    Add { dest: usize, a: usize, b: usize },
    Sub { dest: usize, a: usize, b: usize },
    Mul { dest: usize, a: usize, b: usize },
    Xor { dest: usize, a: usize, b: usize },
    Shift { dest: usize, a: usize, by: u8 },
    FCvt { dest: usize, a: usize },
    FAdd { dest: usize, a: usize, b: usize },
    FMul { dest: usize, a: usize, b: usize },
    Store { addr_slot: usize, val: usize },
    Load { dest: usize, addr_slot: usize },
}

const POOL: usize = 10;
const FPOOL: usize = 6;
const SLOTS: usize = 4;

fn rand_op(rng: &mut Rng) -> RandOp {
    match rng.range(0, 11) {
        0 => RandOp::Lda { dest: rng.range(0, POOL), imm: rng.range_i64(-1000, 1000) },
        1 => RandOp::Add { dest: rng.range(0, POOL), a: rng.range(0, POOL), b: rng.range(0, POOL) },
        2 => RandOp::Sub { dest: rng.range(0, POOL), a: rng.range(0, POOL), b: rng.range(0, POOL) },
        3 => RandOp::Mul { dest: rng.range(0, POOL), a: rng.range(0, POOL), b: rng.range(0, POOL) },
        4 => RandOp::Xor { dest: rng.range(0, POOL), a: rng.range(0, POOL), b: rng.range(0, POOL) },
        5 => RandOp::Shift {
            dest: rng.range(0, POOL),
            a: rng.range(0, POOL),
            by: rng.below(40) as u8,
        },
        6 => RandOp::FCvt { dest: rng.range(0, FPOOL), a: rng.range(0, POOL) },
        7 => RandOp::FAdd {
            dest: rng.range(0, FPOOL),
            a: rng.range(0, FPOOL),
            b: rng.range(0, FPOOL),
        },
        8 => RandOp::FMul {
            dest: rng.range(0, FPOOL),
            a: rng.range(0, FPOOL),
            b: rng.range(0, FPOOL),
        },
        9 => RandOp::Store { addr_slot: rng.range(0, SLOTS), val: rng.range(0, POOL) },
        _ => RandOp::Load { dest: rng.range(0, POOL), addr_slot: rng.range(0, SLOTS) },
    }
}

/// Builds a valid straight-line program from random operations and
/// returns it plus the observation addresses.
fn build_program(ops: &[RandOp]) -> (Program<Vreg>, Vec<u64>) {
    let mut b = ProgramBuilder::new("random");
    let ints: Vec<Vreg> = (0..POOL).map(|i| b.vreg_int(&format!("r{i}"))).collect();
    let fps: Vec<Vreg> = (0..FPOOL).map(|i| b.vreg_fp(&format!("f{i}"))).collect();
    // Give every register a defined initial value so reads are total.
    for (i, &v) in ints.iter().enumerate() {
        b.reg_init(v, i as u64 * 17 + 3);
    }
    for (i, &v) in fps.iter().enumerate() {
        b.reg_init(v, ((i + 1) as f64).to_bits());
    }
    let base = 0x5000u64;
    for op in ops {
        match *op {
            RandOp::Lda { dest, imm } => b.lda(ints[dest], imm),
            RandOp::Add { dest, a, b: c } => b.addq(ints[dest], ints[a], ints[c]),
            RandOp::Sub { dest, a, b: c } => b.subq(ints[dest], ints[a], ints[c]),
            RandOp::Mul { dest, a, b: c } => b.mulq(ints[dest], ints[a], ints[c]),
            RandOp::Xor { dest, a, b: c } => b.xor(ints[dest], ints[a], ints[c]),
            RandOp::Shift { dest, a, by } => b.sll_imm(ints[dest], ints[a], i64::from(by)),
            RandOp::FCvt { dest, a } => b.cvtqt(fps[dest], ints[a]),
            RandOp::FAdd { dest, a, b: c } => b.addt(fps[dest], fps[a], fps[c]),
            RandOp::FMul { dest, a, b: c } => b.mult(fps[dest], fps[a], fps[c]),
            RandOp::Store { addr_slot, val } => {
                let addr = b.vreg_int("addr");
                b.lda(addr, (base + addr_slot as u64 * 8) as i64);
                b.stq(addr, 0, ints[val]);
            }
            RandOp::Load { dest, addr_slot } => {
                let addr = b.vreg_int("addr");
                b.lda(addr, (base + addr_slot as u64 * 8) as i64);
                b.ldq(ints[dest], addr, 0);
            }
        }
    }
    // Publish every integer register so the whole state is observable.
    let out = b.vreg_int("out");
    b.lda(out, 0x7000);
    for (i, &v) in ints.iter().enumerate() {
        b.stq(out, (i as i64) * 8, v);
    }
    for (i, &v) in fps.iter().enumerate() {
        b.stt(out, ((POOL + i) as i64) * 8, v);
    }
    let observe: Vec<u64> = (0..POOL + FPOOL).map(|i| 0x7000 + i as u64 * 8).collect();
    (b.finish().expect("generated program is valid"), observe)
}

#[test]
fn scheduling_preserves_semantics() {
    check_cases(48, |rng| {
        let ops = rng.vec_in(1, 60, rand_op);
        let (il, observe) = build_program(&ops);
        let mut vm = Vm::new(&il);
        vm.run_to_end().unwrap();
        let golden: Vec<u64> = observe.iter().map(|&a| vm.memory().read(a)).collect();

        let assign = RegisterAssignment::even_odd_with_default_globals(2);
        for kind in [
            SchedulerKind::Naive,
            SchedulerKind::Local,
            SchedulerKind::RoundRobin,
            SchedulerKind::BankSplit,
        ] {
            let scheduled = SchedulePipeline::new(kind, &assign).run(&il).unwrap();
            let mut vm = Vm::new(&scheduled.program);
            vm.run_to_end().unwrap();
            for (&addr, &expect) in observe.iter().zip(&golden) {
                assert_eq!(vm.memory().read(addr), expect, "{kind:?} at {addr:#x}");
            }
        }
    });
}

#[test]
fn partitioning_is_total() {
    check_cases(48, |rng| {
        let ops = rng.vec_in(1, 60, rand_op);
        let (il, _) = build_program(&ops);
        let profile = Profile::from_counts(vec![1; il.blocks.len()]);
        let part = LocalScheduler::new(PartitionConfig::default()).partition(&il, &profile);
        for block in &il.blocks {
            for instr in &block.instrs {
                for r in instr.named_regs() {
                    assert!(part.is_global(r) || part.cluster_of(r).is_some(), "{r} unassigned");
                }
            }
        }
    });
}

#[test]
fn simulation_retires_the_whole_trace() {
    check_cases(48, |rng| {
        let ops = rng.vec_in(1, 40, rand_op);
        let (il, _) = build_program(&ops);
        let assign = RegisterAssignment::even_odd_with_default_globals(2);
        let scheduled = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il).unwrap();
        let (trace, _) = trace_program(&scheduled.program).unwrap();
        for cfg in [ProcessorConfig::single_cluster_8way(), ProcessorConfig::dual_cluster_8way()] {
            let retire_width = cfg.retire_width;
            let result = Processor::new(cfg).run_trace(&trace).unwrap();
            assert_eq!(result.stats.retired, trace.len() as u64);
            // Retirement is bounded by width.
            assert!(result.stats.cycles >= trace.len() as u64 / u64::from(retire_width));
        }
    });
}

#[test]
fn round_robin_partition_counts_are_balanced() {
    check_cases(48, |rng| {
        let ops = rng.vec_in(1, 60, rand_op);
        let (il, _) = build_program(&ops);
        let part = Partition::round_robin(&il, 2);
        let counts = part.counts(2);
        assert!(counts[0].abs_diff(counts[1]) <= 1, "{counts:?}");
    });
}
