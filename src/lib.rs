//! # multicluster
//!
//! A from-scratch reproduction of *The Multicluster Architecture:
//! Reducing Cycle Time Through Partitioning* (Farkas, Chow, Jouppi,
//! Vranesic — MICRO-30, 1997): a cycle-level simulator for clustered
//! dynamically-scheduled processors together with the static
//! instruction-scheduling toolchain the paper introduces.
//!
//! This crate is a facade that re-exports the workspace's member crates
//! under stable module names:
//!
//! - [`isa`] — registers, opcodes, instruction classes, Table 1 issue
//!   rules, and the register-to-cluster assignment.
//! - [`trace`] — the intermediate-language program model (live ranges,
//!   basic blocks, control-flow graphs) and the virtual machine that
//!   executes programs to produce dynamic instruction traces and profiles.
//! - [`mem`] — set-associative caches, the inverted MSHR, and the memory
//!   interface.
//! - [`bpred`] — bimodal, global-history, and McFarling combining branch
//!   predictors.
//! - [`sched`] — the static scheduling pipeline: live-range partitioning
//!   (the paper's "local scheduler"), Briggs-style graph-colouring
//!   register allocation with cross-cluster spill preference, and list
//!   scheduling.
//! - [`core`] — the multicluster processor simulator itself (fetch,
//!   distribution with dual execution, dispatch queues, transfer buffers,
//!   replay exceptions, issue, retire) plus the Palacharla-derived
//!   cycle-time model.
//! - [`workloads`] — the six SPEC92-shaped synthetic benchmarks used by
//!   the evaluation, plus microkernels.
//!
//! # Quickstart
//!
//! ```
//! use multicluster::core::{Processor, ProcessorConfig};
//! use multicluster::sched::{SchedulePipeline, SchedulerKind};
//! use multicluster::workloads::microkernels;
//!
//! // Build a small workload, schedule it for a dual-cluster processor,
//! // and simulate both configurations.
//! let program = microkernels::dependent_chain(64);
//!
//! let dual_cfg = ProcessorConfig::dual_cluster_8way();
//! let scheduled = SchedulePipeline::new(SchedulerKind::Local, &dual_cfg.register_assignment())
//!     .run(&program)
//!     .expect("schedulable");
//! let dual = Processor::new(dual_cfg).run_program(&scheduled.program).expect("runs");
//!
//! let single_cfg = ProcessorConfig::single_cluster_8way();
//! let native = SchedulePipeline::new(SchedulerKind::Naive, &single_cfg.register_assignment())
//!     .run(&program)
//!     .expect("schedulable");
//! let single = Processor::new(single_cfg).run_program(&native.program).expect("runs");
//!
//! assert!(dual.stats.cycles > 0 && single.stats.cycles > 0);
//! ```

pub use mcl_bpred as bpred;
pub use mcl_core as core;
pub use mcl_isa as isa;
pub use mcl_mem as mem;
pub use mcl_sched as sched;
pub use mcl_trace as trace;
pub use mcl_workloads as workloads;
