//! Author a program in the textual intermediate language, schedule it,
//! and watch it run on both machines.
//!
//! Pass a path to your own `.mcl` file, or run without arguments for the
//! built-in demo:
//!
//! ```sh
//! cargo run --release --example asm_playground [program.mcl]
//! ```

use multicluster::core::{speedup_percent, Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{SchedulePipeline, SchedulerKind};
use multicluster::trace::asm;

const DEMO: &str = r#"
; dot product with a running maximum — textual intermediate language
program "dotmax"
global %a          ; array bases are global-pointer-like
init %a = 0x200000
initmem 0x200000 = 3
initmem 0x200008 = 1
initmem 0x200010 = 4
initmem 0x200018 = 1
initmem 0x200020 = 5
initmem 0x200028 = 9
initmem 0x200030 = 2
initmem 0x200038 = 6

entry:
    lda %i, #8
    lda %off, #0
    lda %sum, #0
    lda %max, #0
loop:
    addq %p, %a, %off
    ldq %x, [%p + 0]
    mulq %sq, %x, %x
    addq %sum, %sum, %sq
    cmplt %isbig, %max, %x
    beq %isbig, skip
update:
    addq %max, %x, #0
skip:
    addq %off, %off, #8
    subq %i, %i, #1
    bne %i, loop
done:
    stq [0x300000], %sum
    stq [0x300008], %max
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_owned(),
    };
    let il = asm::parse(&source)?;
    println!("parsed `{}`: {} blocks, {} instructions\n", il.name, il.blocks.len(), il.static_len());

    // Run the functional VM for the architectural answer.
    let mut vm = multicluster::trace::Vm::new(&il);
    let steps = vm.run_to_end()?;
    println!("VM: {steps} dynamic instructions");
    println!("  [0x300000] = {}", vm.memory().read(0x30_0000));
    println!("  [0x300008] = {}\n", vm.memory().read(0x30_0008));

    // Schedule and simulate on both machines.
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let native = SchedulePipeline::new(SchedulerKind::Naive, &assign).run(&il)?;
    let local = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il)?;
    let single =
        Processor::new(ProcessorConfig::single_cluster_8way()).run_program(&native.program)?;
    let dual =
        Processor::new(ProcessorConfig::dual_cluster_8way()).run_program(&local.program)?;
    println!("single-cluster: {:>6} cycles (IPC {:.2})", single.stats.cycles, single.stats.ipc());
    println!(
        "dual-cluster:   {:>6} cycles (IPC {:.2}, {:.1}% dual, {:+.1}%)",
        dual.stats.cycles,
        dual.stats.ipc(),
        dual.stats.dual_fraction() * 100.0,
        speedup_percent(dual.stats.cycles, single.stats.cycles)
    );

    // Round-trip: print the canonical rendering.
    println!("\ncanonical rendering:\n{}", asm::render(&il));
    Ok(())
}
