//! Walks the local scheduler through the paper's Figure 6 example
//! control-flow graph, showing the block traversal order, the live-range
//! assignment order, and the final clusters.
//!
//! ```sh
//! cargo run --example scheduler_walkthrough
//! ```

use std::collections::HashMap;

use multicluster::sched::{LocalScheduler, PartitionConfig};
use multicluster::trace::{Profile, ProgramBuilder, Vreg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The exact program of Figure 6. Compound expressions such as
    // `G = [S] + E` are encoded as a load followed by an add; this
    // leaves the figure's traversal and assignment orders unchanged.
    let mut b = ProgramBuilder::new("figure6");
    let names: HashMap<char, Vreg> = [
        ('C', b.vreg_int("C")),
        ('E', b.vreg_int("E")),
        ('G', b.vreg_int("G")),
        ('H', b.vreg_int("H")),
        ('S', b.vreg_int("S")),
        ('A', b.vreg_int("A")),
        ('B', b.vreg_int("B")),
        ('D', b.vreg_int("D")),
    ]
    .into_iter()
    .collect();
    let (c, e, g, h, s, a, bb, d) = (
        names[&'C'], names[&'E'], names[&'G'], names[&'H'], names[&'S'], names[&'A'],
        names[&'B'], names[&'D'],
    );
    b.designate_global_candidate(s); // the stack pointer of the figure
    b.reg_init(s, 0x8000);

    let bb2 = b.new_block("bb2");
    let bb3 = b.new_block("bb3");
    let bb4 = b.new_block("bb4");
    let bb5 = b.new_block("bb5");

    // bb1 (20): 1: C = 0   2: E = 16
    b.lda(c, 0);
    b.lda(e, 16);
    // bb2 (10): 3: G = [S] + 8   4: H = [S] + 4
    b.switch_to(bb2);
    b.ldq(g, s, 8);
    b.ldq(h, s, 0);
    // bb3 (10): 5: G = [S] + E   6: H = [S] + 12   7: S = H + E
    b.switch_to(bb3);
    b.ldq(g, s, 0);
    b.addq(g, g, e);
    b.ldq(h, s, 16);
    b.addq(s, h, e);
    // bb4 (100): 8: A = G + 10   9: B = A x A   10: G = B / H   11: C = G + C
    b.switch_to(bb4);
    b.addq_imm(a, g, 10);
    b.mulq(bb, a, a);
    b.addq(g, bb, h);
    b.addq(c, g, c);
    // bb5 (20): 12: D = C + G
    b.switch_to(bb5);
    b.addq(d, c, g);
    let program = b.finish()?;

    println!("Figure 6 program:\n{}", program.listing());

    // The figure's execution estimates.
    let profile = Profile::from_counts(vec![20, 10, 10, 100, 20]);
    println!("block estimates: 20, 10, 10, 100, 20");
    println!("=> traversal order by (estimate, size): bb4, bb1, bb5, bb3, bb2\n");

    let partition =
        LocalScheduler::new(PartitionConfig::default()).partition(&program, &profile);

    let reverse: HashMap<Vreg, char> = names.iter().map(|(&ch, &v)| (v, ch)).collect();
    let order: Vec<String> =
        partition.assignment_order.iter().map(|v| reverse[v].to_string()).collect();
    println!("assignment order: {}", order.join(", "));
    println!("(the paper's order: C, G, B, A, E, D, H — S is a global candidate)\n");

    for ch in ['A', 'B', 'C', 'D', 'E', 'G', 'H', 'S'] {
        let v = names[&ch];
        let placement = if partition.is_global(v) {
            "global (one copy per cluster)".to_owned()
        } else {
            partition.cluster_of(v).map_or_else(|| "?".to_owned(), |cl| cl.to_string())
        };
        println!("  live range {ch}: {placement}");
    }
    Ok(())
}
