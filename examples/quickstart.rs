//! Quickstart: build a small program, schedule it for the multicluster
//! machine, and compare single-cluster and dual-cluster execution.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use multicluster::core::{speedup_percent, Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{SchedulePipeline, SchedulerKind};
use multicluster::trace::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author a program in the intermediate language: instructions
    //    name live ranges, not registers.
    let mut b = ProgramBuilder::new("quickstart");
    let sp = b.vreg_int("sp");
    b.designate_global_candidate(sp); // stack-pointer-like: global register
    b.reg_init(sp, 0x9000);

    // A miniature of the compress kernel: draw a pseudo-random symbol,
    // probe a small hash table, update it on a miss, and emit a code —
    // the data-dependent loop shape the paper's evaluation lives on.
    let x = b.vreg_int("lcg");
    let code = b.vreg_int("code");
    let i = b.vreg_int("i");
    let hits = b.vreg_int("hits");
    let probe = b.new_block("probe");
    let miss = b.new_block("miss");
    let hit = b.new_block("hit");
    let join = b.new_block("join");
    let done = b.new_block("done");

    b.lda(x, 0x1234_5677);
    b.lda(code, 0);
    b.lda(hits, 0);
    b.lda(i, 2000);

    b.switch_to(probe);
    let (byte, h, addr, v, m) = (
        b.vreg_int("byte"),
        b.vreg_int("h"),
        b.vreg_int("addr"),
        b.vreg_int("v"),
        b.vreg_int("m"),
    );
    b.mulq_imm(x, x, 1_103_515_245);
    b.addq_imm(x, x, 12_345);
    b.srl_imm(byte, x, 16);
    b.and_imm(byte, byte, 255);
    b.sll_imm(h, code, 4);
    b.xor(code, h, byte);
    b.and_imm(code, code, 1023);
    b.sll_imm(h, code, 3);
    b.addq(addr, sp, h);
    b.ldq(v, addr, 0);
    b.and_imm(v, v, 3);
    b.and_imm(m, x, 3);
    b.cmpeq(m, v, m);
    b.bne(m, hit);

    b.switch_to(miss);
    b.stq(addr, 0, x);
    b.br(join);

    b.switch_to(hit);
    b.addq_imm(hits, hits, 1);

    b.switch_to(join);
    b.subq_imm(i, i, 1);
    b.bne(i, probe);

    b.switch_to(done);
    b.stq(sp, -8, hits);
    let il = b.finish()?;

    // 2. Compile two binaries, as the paper does: a cluster-blind
    //    "native" binary and a local-scheduler binary targeting the
    //    even/odd register-to-cluster assignment.
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let native = SchedulePipeline::new(SchedulerKind::Naive, &assign).run(&il)?;
    let local = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il)?;

    println!("native binary:\n{}", native.program.listing());

    // 3. Simulate: native on the single-cluster machine, both on the
    //    dual-cluster machine.
    let single =
        Processor::new(ProcessorConfig::single_cluster_8way()).run_program(&native.program)?;
    let dual_none =
        Processor::new(ProcessorConfig::dual_cluster_8way()).run_program(&native.program)?;
    let dual_local =
        Processor::new(ProcessorConfig::dual_cluster_8way()).run_program(&local.program)?;

    println!("single-cluster (8-way):        {:>8} cycles, IPC {:.2}",
        single.stats.cycles, single.stats.ipc());
    println!(
        "dual-cluster, native binary:   {:>8} cycles, IPC {:.2}, {:>4.1}% dual-distributed ({:+.1}%)",
        dual_none.stats.cycles,
        dual_none.stats.ipc(),
        dual_none.stats.dual_fraction() * 100.0,
        speedup_percent(dual_none.stats.cycles, single.stats.cycles),
    );
    println!(
        "dual-cluster, local scheduler: {:>8} cycles, IPC {:.2}, {:>4.1}% dual-distributed ({:+.1}%)",
        dual_local.stats.cycles,
        dual_local.stats.ipc(),
        dual_local.stats.dual_fraction() * 100.0,
        speedup_percent(dual_local.stats.cycles, single.stats.cycles),
    );
    Ok(())
}
