//! A reduced-scale run of the paper's Table 2: the six SPEC92-shaped
//! benchmarks on the single-cluster and dual-cluster machines, native
//! and rescheduled.
//!
//! For the full-scale reproduction use the bench harness:
//! `cargo run --release -p mcl-bench --bin repro -- table2`.
//!
//! ```sh
//! cargo run --release --example table2_mini
//! ```

use multicluster::core::{speedup_percent, Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{SchedulePipeline, SchedulerKind};
use multicluster::trace::vm::trace_program;
use multicluster::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>12} {:>12} | {:>12} {:>12}",
        "benchmark", "none (meas)", "local (meas)", "none (paper)", "local (paper)"
    );
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    for bench in Benchmark::ALL {
        let scale = (bench.default_scale() / 20).max(1);
        let il = bench.build(scale);

        let native = SchedulePipeline::new(SchedulerKind::Naive, &assign).run(&il)?;
        let local = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il)?;
        let (native_trace, _) = trace_program(&native.program)?;
        let (local_trace, _) = trace_program(&local.program)?;

        let single = Processor::new(ProcessorConfig::single_cluster_8way())
            .run_trace(&native_trace)?
            .stats;
        let none = Processor::new(ProcessorConfig::dual_cluster_8way())
            .run_trace(&native_trace)?
            .stats;
        let loc = Processor::new(ProcessorConfig::dual_cluster_8way())
            .run_trace(&local_trace)?
            .stats;

        let (paper_none, paper_local) = bench.paper_table2();
        println!(
            "{:<10} {:>11.1}% {:>11.1}% | {:>11}% {:>11}%",
            bench.name(),
            speedup_percent(none.cycles, single.cycles),
            speedup_percent(loc.cycles, single.cycles),
            paper_none,
            paper_local,
        );
    }
    println!("\n(reduced scale: expect noisier numbers than `repro table2`)");
    Ok(())
}
