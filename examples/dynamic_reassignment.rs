//! Demonstrates the paper's Section 6 extension: dynamic reassignment
//! of the architectural registers, driven by compiler hints.
//!
//! A phase-changing program runs under three regimes: the static
//! even/odd assignment (its hot chain ping-pongs between clusters), an
//! assignment pinned for phase 1 (but wrong for phase 2), and a
//! *dynamic* schedule that re-pins the registers at the phase boundary.
//!
//! ```sh
//! cargo run --release --example dynamic_reassignment
//! ```

use multicluster::core::config::ReassignmentPoint;
use multicluster::core::{Processor, ProcessorConfig};
use multicluster::isa::assign::{RegAssignment, RegisterAssignment};
use multicluster::isa::{ArchReg, ClusterId};
use multicluster::trace::{Layout, ProgramBuilder};

/// Phase 1: a serial chain over r2/r3. Phase 2: two independent chains
/// over (r2, r6) and (r3, r5) that want r3/r5 on cluster 1.
fn program(rounds: u32) -> multicluster::trace::Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("phases");
    let (r2, r3, r5, r6) = (ArchReg::int(2), ArchReg::int(3), ArchReg::int(5), ArchReg::int(6));
    let i = ArchReg::int(4);
    let phase1 = b.new_block("phase1");
    let phase2_head = b.new_block("phase2_head");
    let phase2 = b.new_block("phase2");

    b.lda(r2, 0);
    b.lda(r3, 1);
    b.lda(i, i64::from(rounds));

    // Phase 1: one serial chain touching r2 and r3 every instruction.
    b.switch_to(phase1);
    for _ in 0..4 {
        b.addq(r2, r2, r3);
        b.addq(r3, r3, r2);
    }
    b.subq_imm(i, i, 1);
    b.bne(i, phase1);

    // Phase 2: two independent chains, one per parity.
    b.switch_to(phase2_head);
    b.lda(i, i64::from(rounds));
    b.lda(r5, 3);
    b.lda(r6, 4);
    b.switch_to(phase2);
    for _ in 0..4 {
        b.addq_imm(r2, r2, 1);
        b.addq_imm(r6, r6, 1);
        b.addq_imm(r3, r3, 1);
        b.addq_imm(r5, r5, 1);
    }
    b.subq_imm(i, i, 1);
    b.bne(i, phase2);
    b.finish().expect("valid")
}

/// Everything interesting on cluster 0 (ideal for phase 1, starves
/// cluster 1 in phase 2).
fn all_on_c0() -> RegisterAssignment {
    RegisterAssignment::from_fn(2, |reg| {
        if reg == ArchReg::SP || reg == ArchReg::GP {
            RegAssignment::Global
        } else if reg.index() < 8 {
            RegAssignment::Local(ClusterId::C0)
        } else {
            RegAssignment::Local(ClusterId::new(reg.index() % 2))
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = 400;
    let p = program(rounds);

    let run = |cfg: ProcessorConfig| {
        Processor::new(cfg).run_program(&p).map(|r| r.stats)
    };

    let even_odd = run(ProcessorConfig::dual_cluster_8way())?;

    let mut pinned_cfg = ProcessorConfig::dual_cluster_8way();
    pinned_cfg.reassignments =
        vec![ReassignmentPoint { trigger_pc: Layout::CODE_BASE, assignment: all_on_c0() }];
    let pinned = run(pinned_cfg)?;

    // Dynamic: pin for phase 1, return to even/odd for phase 2.
    // The phase-2 head starts after entry (3) + phase-1 body (10).
    let phase2_pc = Layout::CODE_BASE + (3 + 10) * 4;
    let mut dynamic_cfg = ProcessorConfig::dual_cluster_8way();
    dynamic_cfg.reassignments = vec![
        ReassignmentPoint { trigger_pc: Layout::CODE_BASE, assignment: all_on_c0() },
        ReassignmentPoint {
            trigger_pc: phase2_pc,
            assignment: RegisterAssignment::even_odd_with_default_globals(2),
        },
    ];
    let dynamic = run(dynamic_cfg)?;

    println!("{:<34} {:>8} {:>8} {:>12}", "assignment regime", "cycles", "dual%", "reassigns");
    for (name, s) in [
        ("static even/odd", &even_odd),
        ("static all-on-cluster-0", &pinned),
        ("dynamic (pin, then even/odd)", &dynamic),
    ] {
        println!(
            "{:<34} {:>8} {:>7.1}% {:>12}",
            name,
            s.cycles,
            s.dual_fraction() * 100.0,
            s.reassignments
        );
    }
    println!(
        "\nPhase 1 wants r2/r3 together; phase 2 wants the chains split.\n\
         The dynamic schedule takes both, paying {} drain/penalty cycles.",
        dynamic.stall_reassign
    );
    Ok(())
}
