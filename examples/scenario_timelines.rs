//! Reproduces the paper's Figures 2–5: cycle-by-cycle timelines of the
//! five dual-execution scenarios of Section 2.1.
//!
//! ```sh
//! cargo run --example scenario_timelines
//! ```

use multicluster::core::{render_pipeline, PipeViewOptions, Processor, ProcessorConfig};
use multicluster::trace::vm::trace_program;
use multicluster::workloads::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for s in scenarios::all() {
        let figure = s.figure.map_or_else(|| "no figure".to_owned(), |f| format!("Figure {f}"));
        println!("── Scenario {} ({figure}) ─ {}", s.number, s.description);
        println!("{}", s.program.listing());

        let (trace, _) = trace_program(&s.program)?;
        let result = Processor::new(ProcessorConfig::dual_cluster_8way().with_events())
            .run_trace(&trace)?;
        let events = result.events.expect("events enabled");
        println!("timeline of the add (dynamic instruction #{}):", s.add_seq);
        println!("{}", events.timeline(s.add_seq));
        println!(
            "scenario classification counts: {:?} (one in slot {})",
            result.stats.scenario,
            s.number
        );
        println!(
            "pipeline view:\n{}",
            render_pipeline(&events, PipeViewOptions { first_seq: 0, last_seq: 3, max_cycles: 64 })
        );
    }
    Ok(())
}
