//! The paper's bottom line (Sections 4.2 and 5): at 0.35 µm the
//! cycle-count overhead of partitioning roughly cancels the cycle-time
//! gain, while at 0.18 µm wire delay makes the 8-issue machine's clock
//! 82 % slower than the 4-issue clock and the multicluster organisation
//! wins outright.
//!
//! ```sh
//! cargo run --release --example cycle_time_crossover
//! ```

use multicluster::core::delay::{breakeven_slowdown, net_runtime_ratio, FeatureSize};
use multicluster::core::{Processor, ProcessorConfig};
use multicluster::isa::assign::RegisterAssignment;
use multicluster::sched::{SchedulePipeline, SchedulerKind};
use multicluster::trace::vm::trace_program;
use multicluster::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cycle-time model (Palacharla, Jouppi & Smith 1997):");
    for f in FeatureSize::ALL {
        println!(
            "  {}: T(4-issue) = {:.0}, T(8-issue) = {:.0}  (+{:.0}%)",
            f.label(),
            f.cycle_time(4),
            f.cycle_time(8),
            (f.wide_to_narrow_ratio() - 1.0) * 100.0
        );
    }
    println!(
        "\nbreak-even cycle slowdown: {:.2}x at 0.35um, {:.2}x at 0.18um\n",
        breakeven_slowdown(FeatureSize::F0_35um),
        breakeven_slowdown(FeatureSize::F0_18um)
    );

    println!(
        "{:<10} {:>12} {:>16} {:>16}",
        "benchmark", "cycle ratio", "runtime @0.35um", "runtime @0.18um"
    );
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    for bench in Benchmark::ALL {
        let scale = (bench.default_scale() / 20).max(1);
        let il = bench.build(scale);
        let native = SchedulePipeline::new(SchedulerKind::Naive, &assign).run(&il)?;
        let local = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il)?;
        let (native_trace, _) = trace_program(&native.program)?;
        let (local_trace, _) = trace_program(&local.program)?;
        let single = Processor::new(ProcessorConfig::single_cluster_8way())
            .run_trace(&native_trace)?
            .stats
            .cycles;
        let dual = Processor::new(ProcessorConfig::dual_cluster_8way())
            .run_trace(&local_trace)?
            .stats
            .cycles;
        println!(
            "{:<10} {:>12.3} {:>16.3} {:>16.3}",
            bench.name(),
            dual as f64 / single as f64,
            net_runtime_ratio(dual, single, FeatureSize::F0_35um),
            net_runtime_ratio(dual, single, FeatureSize::F0_18um)
        );
    }
    println!("\nruntime ratio < 1: the dual-cluster machine is faster in wall time.");
    Ok(())
}
